"""Tests for repro.obs.metrics: registry, rendering, validation, publishers."""

import math

import pytest

from repro.obs.metrics import (
    CATALOG,
    OPENMETRICS_CONTENT_TYPE,
    PERF_COUNTER_FIELDS,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    default_registry,
    publish_journal_record,
    publish_perf_counters,
    publish_store_counts,
    publish_transition,
    render_openmetrics,
    validate_openmetrics,
)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("repro_x", "help")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_labelled_series_are_independent(self):
        c = Counter("repro_x", "help", labels=("campaign",))
        c.inc(campaign="a")
        c.inc(3, campaign="b")
        assert c.value(campaign="a") == 1
        assert c.value(campaign="b") == 3
        assert c.value(campaign="missing") == 0

    def test_cannot_decrease(self):
        c = Counter("repro_x", "help")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_undeclared_label_rejected(self):
        c = Counter("repro_x", "help", labels=("campaign",))
        with pytest.raises(ValueError):
            c.inc(backend="pool")

    def test_samples_carry_total_suffix(self):
        c = Counter("repro_x", "help")
        c.inc(7)
        assert c.samples() == ["repro_x_total 7"]

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            Counter("7bad", "help")
        with pytest.raises(ValueError):
            Counter("has space", "help")


class TestGauge:
    def test_set_inc_value(self):
        g = Gauge("repro_g", "help")
        g.set(5)
        g.inc(-2)
        assert g.value() == 3

    def test_samples_have_no_suffix(self):
        g = Gauge("repro_g", "help", labels=("status",))
        g.set(4, status="done")
        assert g.samples() == ['repro_g{status="done"} 4']


class TestHistogram:
    def test_observe_buckets_cumulative(self):
        h = Histogram("repro_h", "help", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        lines = h.samples()
        assert 'repro_h_bucket{le="0.1"} 1' in lines
        assert 'repro_h_bucket{le="1"} 2' in lines
        assert 'repro_h_bucket{le="+Inf"} 3' in lines
        assert "repro_h_count 3" in lines
        assert any(line.startswith("repro_h_sum ") for line in lines)

    def test_merge_counts_folds_preaggregated(self):
        h = Histogram("repro_h", "help", buckets=(0.1, 1.0))
        h.merge_counts([2, 1, 4], 3.25)
        h.merge_counts([1, 0, 0], 0.01)
        lines = h.samples()
        assert 'repro_h_bucket{le="+Inf"} 8' in lines
        assert "repro_h_count 8" in lines
        assert "repro_h_sum 3.26" in lines

    def test_merge_counts_shape_checked(self):
        h = Histogram("repro_h", "help", buckets=(0.1, 1.0))
        with pytest.raises(ValueError):
            h.merge_counts([1, 2], 0.5)


class TestRegistry:
    def test_idempotent_reregistration(self):
        registry = MetricRegistry()
        a = registry.counter("repro_x", "help", labels=("campaign",))
        b = registry.counter("repro_x", "other help", labels=("campaign",))
        assert a is b

    def test_shape_conflict_raises(self):
        registry = MetricRegistry()
        registry.counter("repro_x", "help")
        with pytest.raises(ValueError):
            registry.gauge("repro_x", "help")
        with pytest.raises(ValueError):
            registry.counter("repro_x", "help", labels=("campaign",))

    def test_default_registry_declares_catalog(self):
        registry = default_registry()
        names = {metric.name for metric in registry}
        for name, (kind, _help, _labels) in CATALOG.items():
            assert name in names
            metric = registry.get(name)
            assert metric.kind == kind

    def test_to_dict_round_trips_values(self):
        registry = MetricRegistry()
        registry.counter("repro_x", "help").inc(3)
        doc = registry.to_dict()
        assert doc["repro_x"]["kind"] == "counter"
        assert doc["repro_x"]["samples"][0]["value"] == 3


class TestRender:
    def test_ends_with_eof(self):
        assert render_openmetrics(MetricRegistry()).endswith("# EOF\n")

    def test_families_sorted_and_typed(self):
        registry = MetricRegistry()
        registry.counter("repro_b", "second").inc()
        registry.gauge("repro_a", "first").set(1)
        text = render_openmetrics(registry)
        lines = text.splitlines()
        assert lines.index("# TYPE repro_a gauge") < lines.index(
            "# TYPE repro_b counter"
        )
        assert validate_openmetrics(text) == []

    def test_label_escaping_survives_validation(self):
        registry = MetricRegistry()
        registry.counter("repro_x", "help", labels=("campaign",)).inc(
            campaign='we "quote" and \\ and\nnewline'
        )
        text = render_openmetrics(registry)
        assert validate_openmetrics(text) == []

    def test_full_default_registry_render_is_valid(self):
        registry = default_registry()
        registry.counter(
            "repro_campaign_transitions",
            "x",
            labels=("campaign", "from_status", "to_status"),
        ).inc(campaign="c", from_status="pending", to_status="running")
        registry.histogram(
            "repro_profile_event_seconds", "x", labels=("component",)
        ).observe(0.001, component="link.delivery")
        assert validate_openmetrics(render_openmetrics(registry)) == []

    def test_content_type_pinned(self):
        assert "openmetrics-text" in OPENMETRICS_CONTENT_TYPE


class TestValidate:
    def test_missing_eof_flagged(self):
        assert validate_openmetrics("# TYPE x counter\nx_total 1\n")

    def test_untyped_family_flagged(self):
        problems = validate_openmetrics("mystery_metric 1\n# EOF\n")
        assert any("undeclared" in p or "TYPE" in p for p in problems)

    def test_counter_without_total_flagged(self):
        text = "# TYPE x counter\nx 1\n# EOF\n"
        assert validate_openmetrics(text)

    def test_non_numeric_value_flagged(self):
        text = "# TYPE x gauge\nx banana\n# EOF\n"
        assert validate_openmetrics(text)

    def test_valid_document_passes(self):
        text = (
            "# TYPE x counter\n"
            "# HELP x help\n"
            'x_total{campaign="a"} 1\n'
            "# EOF\n"
        )
        assert validate_openmetrics(text) == []


class TestPublishers:
    def test_publish_perf_counters_flat(self):
        registry = default_registry()
        perf = {field: float(i + 1) for i, field in enumerate(PERF_COUNTER_FIELDS)}
        publish_perf_counters(registry, perf, campaign="c")
        events = registry.get("repro_perf_events_dispatched")
        assert events.value(campaign="c") == perf["events_dispatched"]

    def test_publish_perf_counters_nested_record_shape(self):
        registry = default_registry()
        record = {
            "counters": {"events_dispatched": 10.0, "timers_scheduled": 4.0},
            "wall_s": 0.5,
            "sim_s": 30.0,
        }
        publish_perf_counters(registry, record, campaign="c")
        assert (
            registry.get("repro_perf_events_dispatched").value(campaign="c") == 10.0
        )
        assert registry.get("repro_perf_wall_seconds").value(campaign="c") == 0.5
        assert registry.get("repro_perf_sim_seconds").value(campaign="c") == 30.0

    def test_publish_perf_counters_accumulates(self):
        registry = default_registry()
        publish_perf_counters(registry, {"events_dispatched": 5.0}, campaign="c")
        publish_perf_counters(registry, {"events_dispatched": 7.0}, campaign="c")
        assert (
            registry.get("repro_perf_events_dispatched").value(campaign="c") == 12.0
        )

    def test_publish_journal_record_routes_by_kind(self):
        registry = default_registry()
        publish_journal_record(
            registry, {"record": "job", "status": "executed"}, campaign="c"
        )
        publish_journal_record(
            registry, {"record": "job", "status": "cached"}, campaign="c"
        )
        publish_journal_record(registry, {"record": "retry"}, campaign="c")
        publish_journal_record(registry, {"record": "batch_start"}, campaign="c")
        outcomes = registry.get("repro_campaign_job_outcomes")
        assert outcomes.value(campaign="c", status="executed") == 1
        assert outcomes.value(campaign="c", status="cached") == 1
        assert registry.get("repro_campaign_retries").value(campaign="c") == 1
        assert registry.get("repro_campaign_drains").value(campaign="c") == 1

    def test_publish_store_counts_sets_gauges(self):
        registry = default_registry()
        publish_store_counts(
            registry, {"pending": 2, "running": 1, "done": 3, "failed": 0}, "c"
        )
        jobs = registry.get("repro_campaign_jobs")
        assert jobs.value(campaign="c", status="pending") == 2
        assert jobs.value(campaign="c", status="done") == 3
        # Re-publishing overwrites (gauge semantics), not accumulates.
        publish_store_counts(
            registry, {"pending": 0, "running": 0, "done": 6, "failed": 0}, "c"
        )
        assert jobs.value(campaign="c", status="pending") == 0
        assert jobs.value(campaign="c", status="done") == 6

    def test_publish_transition_counts_edges(self):
        registry = default_registry()
        publish_transition(registry, "pending", "running", campaign="c")
        publish_transition(registry, "pending", "running", campaign="c")
        publish_transition(registry, "running", "done", campaign="c")
        transitions = registry.get("repro_campaign_transitions")
        assert transitions.value(
            campaign="c", from_status="pending", to_status="running"
        ) == 2
        assert transitions.value(
            campaign="c", from_status="running", to_status="done"
        ) == 1


class TestCatalog:
    def test_catalog_shapes_are_consistent(self):
        for name, (kind, help_text, labels) in CATALOG.items():
            assert kind in ("counter", "gauge", "histogram")
            assert help_text
            assert isinstance(labels, tuple)
            assert name.startswith("repro_")

    def test_perf_fields_have_catalog_entries(self):
        for field in PERF_COUNTER_FIELDS:
            assert f"repro_perf_{field}" in CATALOG

    def test_value_formatting_stable(self):
        c = Counter("repro_x", "h")
        c.inc(1e15 + 0.5)
        value = c.samples()[0].split(" ")[1]
        assert math.isfinite(float(value))
