"""Tests for the extension features: CUBIC, the redundant scheduler, and
the harmonic-mean ABR."""

import pytest

from repro.apps.dash.abr import AbrInputs, HarmonicThroughputAbr, make_abr
from repro.apps.dash.media import VideoManifest
from repro.core import RedundantScheduler, make_scheduler
from repro.tcp.cc import CubicController, make_controller
from repro.tcp.cc.cubic import BETA_CUBIC
from tests.conftest import build_connection, drain


class TestCubic:
    def test_factory_knows_cubic(self):
        assert isinstance(make_controller("cubic"), CubicController)

    def single_path(self, sim):
        conn = build_connection(
            sim, path_specs=((10.0, 0.01),), congestion_control="cubic"
        )
        return conn, conn.subflows[0]

    def test_transfer_completes(self, sim):
        conn, sf = self.single_path(sim)
        conn.write(3_000_000)
        drain(sim)
        assert conn.delivered_bytes == 3_000_000

    def test_loss_decrease_is_gentler_than_reno(self, sim):
        conn, sf = self.single_path(sim)
        sf.cwnd = 100.0
        sf._in_flight = 100
        sf.rtt.add_sample(0.02)
        conn.cc.on_loss(sf)
        assert sf.cwnd == pytest.approx(100.0 * BETA_CUBIC)

    def test_growth_accelerates_away_from_wmax(self, sim):
        """Past the plateau, the cubic term grows the window faster."""
        conn, sf = self.single_path(sim)
        sf.rtt.add_sample(0.02)
        sf.cwnd = 100.0
        sf._in_flight = 100
        conn.cc.on_loss(sf)  # sets w_max = 100, cwnd = 70
        sf.ssthresh = 1.0  # force congestion avoidance
        near = conn.cc.ca_increase(sf)
        # Far in the future (convex region), growth is larger.
        sim.schedule(20.0, lambda: None)
        sim.run()
        far = conn.cc.ca_increase(sf)
        assert far >= near

    def test_increase_bounded_by_slow_start(self, sim):
        conn, sf = self.single_path(sim)
        sf.rtt.add_sample(0.02)
        sf.cwnd = 1.0
        assert conn.cc.ca_increase(sf) <= 1.0

    def test_rto_resets_epoch(self, sim):
        conn, sf = self.single_path(sim)
        sf.cwnd = 50.0
        sf._in_flight = 50
        conn.cc.on_rto(sf)
        assert sf.cwnd == 1.0


class TestRedundantScheduler:
    def test_registry_knows_redundant(self):
        assert isinstance(make_scheduler("redundant"), RedundantScheduler)

    def test_duplicates_are_sent_on_other_subflows(self, sim):
        # Symmetric paths: the twin subflow almost always has window
        # space, so nearly every segment gets a copy.
        conn = build_connection(
            sim, scheduler_name="redundant",
            path_specs=((10.0, 0.01), (10.0, 0.011)),
        )
        conn.write(500_000)
        drain(sim)
        assert conn.delivered_bytes == 500_000
        assert conn.duplicate_transmissions > 100
        sent = conn.payload_sent_by_subflow()
        assert min(sent.values()) > 250_000

    def test_receiver_dedupes_copies(self, sim):
        conn = build_connection(sim, scheduler_name="redundant")
        conn.write(200_000)
        drain(sim)
        assert conn.receiver.expected_dsn == 200_000
        assert conn.receiver.duplicate_packets > 0

    def test_masks_loss_on_lossy_primary(self, sim):
        """Copies on the clean path mask losses on the lossy one: typical
        (median) in-order delivery stays prompt despite 5% loss."""
        import random as _random
        from repro.core.registry import make_scheduler as mk
        from repro.metrics.stats import percentile
        from repro.mptcp.connection import ConnectionConfig, MptcpConnection
        from repro.net.link import Link
        from repro.net.path import Path

        local_sim = type(sim)()
        lossy_fwd = Link(local_sim, 10e6, 0.01, 300_000,
                         loss_rate=0.05, rng=_random.Random(4))
        lossy = Path("lossy", lossy_fwd, Link(local_sim, 10e6, 0.01, 300_000))
        clean = Path("clean", Link(local_sim, 10e6, 0.012, 300_000),
                     Link(local_sim, 10e6, 0.012, 300_000))
        conn = MptcpConnection(
            local_sim, [lossy, clean], mk("redundant"),
            config=ConnectionConfig(handshake_delays=False),
        )
        conn.write(400_000)
        local_sim.run(until=120.0)
        assert conn.delivered_bytes == 400_000
        assert conn.duplicate_transmissions > 0
        # Median in-order delay remains small: the twin copy covers most
        # losses without waiting for a retransmission.
        assert percentile(conn.receiver.ooo_delays, 50) < 0.05

    def test_non_redundant_schedulers_do_not_duplicate(self, sim):
        conn = build_connection(sim, scheduler_name="minrtt")
        conn.write(500_000)
        drain(sim)
        assert conn.duplicate_transmissions == 0


class TestHarmonicAbr:
    def inputs(self, samples, estimate=None):
        return AbrInputs(
            buffer_level=20.0,
            throughput_estimate_bps=estimate,
            last_representation=None,
            startup=False,
            recent_throughputs_bps=tuple(samples),
        )

    def test_harmonic_mean_dominated_by_slow_samples(self):
        manifest = VideoManifest()
        abr = HarmonicThroughputAbr(safety=1.0)
        # One fast outlier cannot lift the estimate much: harmonic mean of
        # (1, 1, 100) Mbps is ~1.5 Mbps.
        rep = abr.choose(manifest, self.inputs([1e6, 1e6, 100e6]))
        assert rep.bitrate_bps <= 1.6e6

    def test_falls_back_to_ewma_then_lowest(self):
        manifest = VideoManifest()
        abr = HarmonicThroughputAbr(safety=1.0)
        assert abr.choose(manifest, self.inputs([], estimate=5e6)).name == "720p"
        assert abr.choose(manifest, self.inputs([])).name == "144p"

    def test_window_limits_history(self):
        manifest = VideoManifest()
        abr = HarmonicThroughputAbr(safety=1.0, window=2)
        # Old slow samples fall outside the window.
        rep = abr.choose(manifest, self.inputs([0.1e6, 9e6, 9e6]))
        assert rep.name == "1080p"

    def test_validation(self):
        with pytest.raises(ValueError):
            HarmonicThroughputAbr(safety=0.0)
        with pytest.raises(ValueError):
            HarmonicThroughputAbr(window=0)

    def test_factory(self):
        assert isinstance(make_abr("harmonic"), HarmonicThroughputAbr)

    def test_streaming_session_with_harmonic_abr(self):
        from repro.experiments.runner import StreamingRunConfig, run_streaming

        result = run_streaming(StreamingRunConfig(
            scheduler="ecf", wifi_mbps=4.2, lte_mbps=8.6,
            video_duration=30.0, abr="harmonic",
        ))
        assert result.finished
        assert result.average_bitrate_bps > 0
