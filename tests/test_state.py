"""Tests for the state-model auditor (repro.analysis.state + RPR9xx).

Covers the seeded fixture package (``tests/data/state``), the ownership
graph and simulator component, the committed ``state-model.json``
snapshot (byte-identical regeneration), noqa suppression per rule,
deterministic baseline/SARIF emission, the ``--changed`` deleted-path
regression, and the ``__slots__`` satellite on the hot-path classes.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.baseline import fingerprint, normalize_path
from repro.analysis.flow import Violation
from repro.analysis.lint import RULES, default_lint_root, run_lint
from repro.analysis.state import (
    RULES_9XX,
    STATE_SCOPE,
    StateModel,
    build_state_model,
    in_state_scope,
    render_state_model,
    state_violations,
)
from repro.cli import main as cli_main

REPO_ROOT = Path(__file__).parent.parent
STATE_DIR = Path(__file__).parent / "data" / "state"
MODEL_PATH = REPO_ROOT / "state-model.json"

NO_REGISTRIES: dict = {}


def state_run(paths=None, **kwargs):
    kwargs.setdefault("registries", NO_REGISTRIES)
    return run_lint(paths or [STATE_DIR], **kwargs)


def findings_in(run, filename):
    return [v for v in run.violations if v.path.endswith(filename)]


@pytest.fixture(scope="module")
def fixture_run():
    """One analysis of the fixture package, shared across assertions."""
    return state_run()


@pytest.fixture(scope="module")
def tree_run():
    """One analysis of the real package, shared across model assertions."""
    return run_lint([default_lint_root()])


class TestFixturePackage:
    """Every RPR9xx rule fires on its seeded module, nowhere else."""

    def test_rpr911_fires_on_hidden(self, fixture_run):
        violations = findings_in(fixture_run, "hidden.py")
        assert [v.code for v in violations] == ["RPR911"]
        assert "LazyCounter.started" in violations[0].message
        assert "bump()" in violations[0].message

    def test_rpr911_spares_reset_births(self, fixture_run):
        messages = " ".join(v.message for v in findings_in(fixture_run, "hidden.py"))
        assert "high_water" not in messages

    def test_rpr912_fires_on_slotdrift(self, fixture_run):
        violations = findings_in(fixture_run, "slotdrift.py")
        assert {v.code for v in violations} == {"RPR912"}
        messages = " ".join(v.message for v in violations)
        assert "dead slot" in messages and "retired" in messages
        assert "Gauge.label" in messages
        assert "Probe" in messages and "no __slots__" in messages

    def test_rpr913_fires_on_aliasing(self, fixture_run):
        violations = findings_in(fixture_run, "aliasing.py")
        assert {v.code for v in violations} == {"RPR913"}
        messages = " ".join(v.message for v in violations)
        assert "Router.routes" in messages and "Router.weights" in messages
        assert "left and right" in messages and "'buckets'" in messages

    def test_rpr914_fires_on_forkunsafe(self, fixture_run):
        violations = findings_in(fixture_run, "forkunsafe.py")
        assert {v.code for v in violations} == {"RPR914"}
        messages = " ".join(v.message for v in violations)
        assert "OS handle" in messages
        assert "live generator" in messages
        assert "bound method of Simulator" in messages
        assert "lambda" in messages

    def test_rpr914_spares_snapshot_rebind_callables(self, fixture_run):
        messages = " ".join(
            v.message for v in findings_in(fixture_run, "forkunsafe.py")
        )
        # The callable declared in SNAPSHOT_REBIND is fork-safe by
        # construction; the handle stays flagged even though declared.
        assert "RebindRecorder.hook" not in messages
        assert "RebindRecorder.fh" in messages

    def test_rpr915_fires_on_driftdecl(self, fixture_run):
        [violation] = findings_in(fixture_run, "driftdecl.py")
        assert violation.code == "RPR915"
        assert "deadline" in violation.message  # observed but undeclared
        assert "retries" in violation.message  # declared but never assigned

    def test_clean_module_is_quiet(self, fixture_run):
        assert findings_in(fixture_run, "clean.py") == []

    def test_noqa_suppresses_every_rule(self, fixture_run):
        assert findings_in(fixture_run, "suppressed.py") == []

    def test_noqa_seeds_resurface_unsuppressed(self, fixture_run):
        # The suppressed module must genuinely seed all five rules: the
        # raw (pre-noqa) findings carry one of each family member.
        raw = [
            v
            for v in state_violations(fixture_run.project)
            if v.path.endswith("suppressed.py")
        ]
        assert {v.code for v in raw} == set(RULES_9XX)

    def test_every_9xx_rule_represented(self, fixture_run):
        fired = {v.code for v in fixture_run.violations if v.code.startswith("RPR9")}
        assert set(RULES_9XX) <= fired


class TestOwnershipGraph:
    def test_simulator_is_the_root(self, tree_run):
        model = StateModel(tree_run.project)
        assert model.roots == ["repro.sim.engine.Simulator"]

    def test_component_reaches_the_stack(self, tree_run):
        model = StateModel(tree_run.project)
        reachable = {
            qual for qual, cls in model.classes.items() if cls.in_component
        }
        for expected in (
            "repro.sim.engine.Timer",
            "repro.tcp.subflow.Subflow",
            "repro.mptcp.connection.MptcpConnection",
            "repro.mptcp.receiver.MptcpReceiver",
            "repro.core.ecf.EcfScheduler",
        ):
            assert expected in reachable

    def test_field_kinds_on_the_engine(self, tree_run):
        model = StateModel(tree_run.project)
        timer = model.classes["repro.sim.engine.Timer"]
        assert "callback" in timer.fields
        sim = model.classes["repro.sim.engine.Simulator"]
        assert "_heap" in sim.fields and "now" in sim.fields

    def test_scope_filter(self):
        assert in_state_scope("repro.sim.engine", STATE_SCOPE)
        assert in_state_scope("tests.data.state.hidden", STATE_SCOPE)
        assert not in_state_scope("repro.obs.journal", STATE_SCOPE)


class TestStateModelSnapshot:
    def test_committed_model_regenerates_byte_identical(self, tree_run):
        document = render_state_model(build_state_model(tree_run.project))
        assert document == MODEL_PATH.read_text()

    def test_render_is_deterministic(self, tree_run):
        first = render_state_model(build_state_model(tree_run.project))
        second = render_state_model(build_state_model(tree_run.project))
        assert first == second

    def test_model_has_no_line_numbers(self):
        data = json.loads(MODEL_PATH.read_text())
        assert data["version"] == 1
        text = MODEL_PATH.read_text()
        assert '"line"' not in text  # churn-free: no positions in the snapshot

    def test_model_covers_only_scoped_repro_classes(self):
        data = json.loads(MODEL_PATH.read_text())
        for qual in data["classes"]:
            assert qual.startswith("repro.")
            module = qual.rsplit(".", 1)[0]
            assert in_state_scope(module, tuple(data["scope"]))

    def test_declared_contracts_recorded(self):
        data = json.loads(MODEL_PATH.read_text())
        sim = data["classes"]["repro.sim.engine.Simulator"]
        assert sim["declared_state"] is not None
        assert "now" in sim["declared_state"]
        est = data["classes"]["repro.tcp.rtt.RttEstimator"]
        assert est["slots"] is not None and "srtt" in est["slots"]


class TestStateCli:
    def test_check_passes_on_committed_model(self):
        assert cli_main(["state", "--no-cache", "--check", str(MODEL_PATH)]) == 0

    def test_check_fails_on_stale_model(self, tmp_path, capsys):
        stale = tmp_path / "state-model.json"
        stale.write_text("{}\n")
        code = cli_main(
            ["state", "--no-cache", "--check", str(stale), str(STATE_DIR)]
        )
        assert code == 1
        assert "stale" in capsys.readouterr().err

    def test_output_writes_the_document(self, tmp_path):
        out = tmp_path / "model.json"
        assert cli_main(["state", "--no-cache", "-o", str(out), str(STATE_DIR)]) == 0
        data = json.loads(out.read_text())
        assert data["version"] == 1
        assert out.read_text().endswith("\n")


class TestChangedPathTolerance:
    def test_deleted_paths_are_dropped(self, monkeypatch, tmp_path):
        # git diff reports deleted/renamed-away files; lint --changed must
        # skip them instead of raising FileNotFoundError.
        live = tmp_path / "live.py"
        live.write_text("import time\nt = time.time()\n")
        monkeypatch.setattr(
            "repro.cli._changed_files",
            lambda: {str(live), str(tmp_path / "deleted.py"), "renamed-away.py"},
        )
        assert cli_main(["lint", "--no-cache", "--changed", str(tmp_path)]) == 1

    def test_all_deleted_is_a_clean_noop(self, monkeypatch, capsys):
        monkeypatch.setattr(
            "repro.cli._changed_files", lambda: {"gone.py", "also-gone.py"}
        )
        assert cli_main(["lint", "--no-cache", "--changed"]) == 0
        assert "no changed python files" in capsys.readouterr().err


class TestBaselineStability:
    def test_fingerprint_survives_moving_the_line(self):
        a = Violation("src/repro/sim/engine.py", 10, 1, "RPR914", "msg", "fix")
        b = Violation("src/repro/sim/engine.py", 400, 9, "RPR914", "msg", "fix")
        assert fingerprint(a) == fingerprint(b)

    def test_fingerprint_is_invocation_form_independent(self):
        rel = Violation("src/repro/sim/engine.py", 1, 1, "RPR914", "msg", "fix")
        absolute = Violation(
            str(REPO_ROOT / "src" / "repro" / "sim" / "engine.py"),
            1,
            1,
            "RPR914",
            "msg",
            "fix",
        )
        assert fingerprint(rel) == fingerprint(absolute)

    def test_normalize_path_posix_form(self):
        assert normalize_path(REPO_ROOT / "lint-baseline.json") == (
            "lint-baseline.json"
        )

    def test_committed_baseline_matches_the_tree(self, capsys):
        # The two historical RPR914 acceptances (Timer.callback and
        # MptcpReceiver.on_deliver) are retired: SNAPSHOT_REBIND marks
        # them fork-safe, so the tree lints clean with an empty baseline.
        code = cli_main(
            [
                "lint",
                "--no-cache",
                "--baseline",
                str(REPO_ROOT / "lint-baseline.json"),
                str(REPO_ROOT / "src" / "repro"),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0, captured.out
        assert "baselined" not in captured.err

    def test_committed_baseline_is_empty(self):
        document = json.loads((REPO_ROOT / "lint-baseline.json").read_text())
        assert document["findings"] == {}


class TestDeterministicEmission:
    def test_update_baseline_is_stable_and_keeps_reasons(self, tmp_path, capsys):
        target = tmp_path / "baseline.json"
        argv = [
            "lint",
            "--no-cache",
            "--update-baseline",
            "--baseline",
            str(target),
            str(STATE_DIR),
        ]
        assert cli_main(argv) == 0
        first = target.read_text()
        # Curate one reason, then re-snapshot: bytes identical except the
        # curated reason, which must survive.
        document = json.loads(first)
        key = sorted(document["findings"])[0]
        document["findings"][key]["reason"] = "curated explanation"
        target.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
        assert cli_main(argv) == 0
        second = json.loads(target.read_text())
        assert second["findings"][key]["reason"] == "curated explanation"
        assert cli_main(argv) == 0
        assert target.read_text() == json.dumps(second, indent=2, sort_keys=True) + "\n"
        capsys.readouterr()

    def test_sarif_double_write_identical(self, tmp_path, capsys):
        out = tmp_path / "lint.sarif"
        argv = ["lint", "--no-cache", "--sarif", str(out), str(STATE_DIR)]
        cli_main(argv)
        first = out.read_bytes()
        cli_main(argv)
        capsys.readouterr()
        assert out.read_bytes() == first
        data = json.loads(first)
        assert data["version"] == "2.1.0"

    def test_state_model_double_write_identical(self, tmp_path, capsys):
        out = tmp_path / "model.json"
        argv = ["state", "--no-cache", "-o", str(out), str(STATE_DIR)]
        assert cli_main(argv) == 0
        first = out.read_bytes()
        assert cli_main(argv) == 0
        capsys.readouterr()
        assert out.read_bytes() == first


class TestSlotsSatellite:
    HOT_CLASSES = (
        ("repro.sim.engine", "Timer"),
        ("repro.core.base", "Scheduler"),
        ("repro.core.ecf", "EcfScheduler"),
        ("repro.core.minrtt", "MinRttScheduler"),
        ("repro.tcp.rtt", "RttEstimator"),
        ("repro.tcp.cc.base", "CongestionController"),
        ("repro.net.path", "Path"),
        ("repro.sim.trace", "TraceRecorder"),
        ("repro.apps.http", "HttpSession"),
    )

    def test_hot_classes_have_no_instance_dict(self):
        import importlib

        for module_name, class_name in self.HOT_CLASSES:
            cls = getattr(importlib.import_module(module_name), class_name)
            assert "__slots__" in cls.__dict__, f"{class_name} lost its __slots__"
            # Slot-restriction only holds if every class on the MRO is
            # slotted; one dictful base re-grows the per-instance dict.
            dictful = [
                base.__name__
                for base in cls.__mro__
                if base is not object and "__dict__" in vars(base)
            ]
            assert not dictful, f"{class_name} regrew __dict__ via {dictful}"

    def test_scheduler_still_constructs_and_counts(self):
        from repro.core.ecf import EcfScheduler

        scheduler = EcfScheduler()
        assert scheduler.decisions == 0 and scheduler.waits == 0
        with pytest.raises(AttributeError):
            scheduler.surprise_attribute = 1  # slots reject strays

    def test_rules_registered_in_front_end(self):
        for code in RULES_9XX:
            assert code in RULES
