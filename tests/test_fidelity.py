"""Tests for the executable fidelity battery."""

from repro.experiments.fidelity import (
    ALL_CHECKS,
    CheckResult,
    FidelityReport,
    validate_transport,
)


class TestBattery:
    def test_full_battery_passes(self):
        report = validate_transport()
        assert report.passed, report.summary()

    def test_every_check_has_a_measurement(self):
        report = validate_transport()
        assert len(report.checks) == len(ALL_CHECKS)
        for check in report.checks:
            assert check.measured == check.measured  # not NaN
            assert check.expectation

    def test_summary_renders_all_checks(self):
        report = validate_transport()
        text = report.summary()
        for check in report.checks:
            assert check.name in text


class TestReportMechanics:
    def test_failed_check_fails_report(self):
        report = FidelityReport(checks=[
            CheckResult("good", True, 1.0, "x"),
            CheckResult("bad", False, 0.0, "y"),
        ])
        assert not report.passed
        assert "FAIL" in report.summary()

    def test_empty_report_passes(self):
        assert FidelityReport().passed
