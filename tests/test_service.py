"""Tests for the campaign service (repro.service).

Covers the store's state machine and durability, backend-config round
trips through the registry, and the runner's submit/drain/requeue/fetch
loop -- including the acceptance path: a campaign killed mid-drain
resumes from SQLite without re-simulating finished jobs (proved by
"cached" journal records).
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.apps.bulk import BulkDownloadResult, BulkDownloadSpec
from repro.experiments.grid import wget_matrix
from repro.experiments.spec import register_experiment, spec_hash
from repro.net.profiles import lte_config, wifi_config
from repro.service import (
    CampaignError,
    CampaignRunner,
    CampaignStore,
    InlineBackendConfig,
    PoolBackendConfig,
    TransitionError,
    backend_config_from_dict,
    build,
    register_backend,
    registered_backend_kinds,
)
from repro.service.backends import ExecutorBackend


def bulk_specs(n=3, size=64 * 1024):
    return [
        BulkDownloadSpec(
            scheduler="ecf",
            path_configs=(wifi_config(2.0), lte_config(float(2 + i))),
            size=size,
            seed=i,
        )
        for i in range(n)
    ]


@dataclasses.dataclass(frozen=True)
class FlakySpec:
    """Test-only spec that fails until its marker counts enough attempts."""

    kind = "test_flaky"

    marker: str
    succeed_after: int = 2

    def to_dict(self):
        return {"marker": self.marker, "succeed_after": self.succeed_after}

    @classmethod
    def from_dict(cls, data):
        return cls(**data)


@dataclasses.dataclass(frozen=True)
class FlakyResult:
    attempts: int

    def to_dict(self):
        return {"attempts": self.attempts}

    @classmethod
    def from_dict(cls, data):
        return cls(**data)


def _run_flaky(spec: FlakySpec) -> FlakyResult:
    marker = Path(spec.marker)
    count = int(marker.read_text()) if marker.exists() else 0
    count += 1
    marker.write_text(str(count))
    if count < spec.succeed_after:
        raise RuntimeError(f"deliberate failure on attempt {count}")
    return FlakyResult(attempts=count)


register_experiment("test_flaky", FlakySpec.from_dict, _run_flaky, FlakyResult.from_dict)


class TestStore:
    def test_submit_is_idempotent_by_spec_hash(self, tmp_path):
        with CampaignStore(tmp_path / "c.db") as store:
            cid = store.ensure_campaign("sweep", {"kind": "inline"})
            specs = bulk_specs(3)
            assert store.add_jobs(cid, specs) == 3
            # Same content, fresh instances: nothing new to add.
            assert store.add_jobs(cid, bulk_specs(3)) == 0
            # A superset only adds the genuinely new jobs.
            assert store.add_jobs(cid, bulk_specs(5)) == 2
            assert store.counts(cid)["pending"] == 5

    def test_ensure_campaign_reuses_by_name(self, tmp_path):
        with CampaignStore(tmp_path / "c.db") as store:
            first = store.ensure_campaign("fig14", {"kind": "inline"})
            again = store.ensure_campaign("fig14", {"kind": "pool", "jobs": 4})
            assert first == again
            # The stored backend keeps describing the original submission.
            assert store.campaign("fig14").backend == {"kind": "inline"}

    def test_state_machine_happy_path(self, tmp_path):
        with CampaignStore(tmp_path / "c.db") as store:
            cid = store.ensure_campaign("sweep", {"kind": "inline"})
            (spec,) = bulk_specs(1)
            store.add_jobs(cid, [spec])
            key = spec_hash(spec)
            store.claim(cid, key)
            assert store.job(cid, key).status == "running"
            assert store.job(cid, key).attempts == 1
            store.mark_done(cid, key, result_path="/tmp/x.json", wall_s=0.5)
            job = store.job(cid, key)
            assert job.status == "done"
            assert job.result_path == "/tmp/x.json"

    def test_cache_hit_shortcut_pending_to_done(self, tmp_path):
        with CampaignStore(tmp_path / "c.db") as store:
            cid = store.ensure_campaign("sweep", {"kind": "inline"})
            (spec,) = bulk_specs(1)
            store.add_jobs(cid, [spec])
            store.mark_done(cid, spec_hash(spec))  # no claim needed
            assert store.counts(cid)["done"] == 1

    def test_illegal_transitions_raise(self, tmp_path):
        with CampaignStore(tmp_path / "c.db") as store:
            cid = store.ensure_campaign("sweep", {"kind": "inline"})
            (spec,) = bulk_specs(1)
            store.add_jobs(cid, [spec])
            key = spec_hash(spec)
            with pytest.raises(TransitionError):
                store.mark_failed(cid, key, "Boom", "pending cannot fail")
            assert store.claim(cid, key) is True
            store.mark_done(cid, key)
            # Done is terminal: the claim is simply lost, not an error
            # (another racing runner losing a claim is routine).
            assert store.claim(cid, key) is False
            with pytest.raises(KeyError):
                store.claim(cid, "no-such-hash")

    def test_reset_running_recovers_orphans(self, tmp_path):
        with CampaignStore(tmp_path / "c.db") as store:
            cid = store.ensure_campaign("sweep", {"kind": "inline"})
            specs = bulk_specs(3)
            store.add_jobs(cid, specs)
            store.claim(cid, spec_hash(specs[0]))
            store.claim(cid, spec_hash(specs[1]))
            assert store.reset_running(cid) == 2
            counts = store.counts(cid)
            assert counts["pending"] == 3 and counts["running"] == 0
            # Attempts survive the reset -- the crash burned a try.
            assert store.job(cid, spec_hash(specs[0])).attempts == 1

    def test_requeue_respects_attempt_cap(self, tmp_path):
        with CampaignStore(tmp_path / "c.db") as store:
            cid = store.ensure_campaign("sweep", {"kind": "inline"})
            (spec,) = bulk_specs(1)
            store.add_jobs(cid, [spec])
            key = spec_hash(spec)
            store.claim(cid, key)
            store.mark_failed(cid, key, "RuntimeError", "boom")
            # Below the cap each failure requeues...
            assert store.requeue_failed(cid, max_attempts=3) == (1, 0)
            store.claim(cid, key)
            store.mark_failed(cid, key, "RuntimeError", "boom")
            assert store.requeue_failed(cid, max_attempts=3) == (1, 0)
            store.claim(cid, key)
            store.mark_failed(cid, key, "RuntimeError", "boom")
            # ...but at the cap the job stays failed.
            assert store.requeue_failed(cid, max_attempts=3) == (0, 1)
            assert store.job(cid, key).status == "failed"
            assert store.job(cid, key).attempts == 3

    def test_state_survives_reopen(self, tmp_path):
        db = tmp_path / "c.db"
        specs = bulk_specs(2)
        with CampaignStore(db) as store:
            cid = store.ensure_campaign("sweep", {"kind": "pool", "jobs": 4})
            store.add_jobs(cid, specs)
            store.claim(cid, spec_hash(specs[0]))
            store.mark_done(cid, spec_hash(specs[0]))
        with CampaignStore(db) as store:
            campaign = store.campaign("sweep")
            assert campaign.backend == {"kind": "pool", "jobs": 4}
            counts = store.counts(campaign.id)
            assert counts == {"pending": 1, "running": 0, "done": 1, "failed": 0}
            job = store.job(campaign.id, spec_hash(specs[1]))
            assert job.spec["spec"]["size"] == specs[1].size

    def test_journal_index(self, tmp_path):
        with CampaignStore(tmp_path / "c.db") as store:
            cid = store.ensure_campaign("sweep", {"kind": "inline"})
            store.record_journal(cid, {"record": "job", "status": "cached"})
            store.record_journal(cid, {"record": "batch_end", "executed": 0})
            jobs = store.journal_records(cid, record="job")
            assert [r["status"] for r in jobs] == ["cached"]
            assert len(store.journal_records(cid)) == 2


class TestBackendConfigs:
    def test_round_trip_through_wire_form(self):
        for config in (
            InlineBackendConfig(),
            InlineBackendConfig(timeout_s=30.0, retries=2),
            PoolBackendConfig(),
            PoolBackendConfig(jobs=7, timeout_s=5.0, retries=3),
        ):
            wire = json.loads(json.dumps(config.to_dict()))
            assert backend_config_from_dict(wire) == config

    def test_round_trip_through_store(self, tmp_path):
        config = PoolBackendConfig(jobs=3, timeout_s=60.0)
        with CampaignStore(tmp_path / "c.db") as store:
            store.ensure_campaign("sweep", config.to_dict())
            stored = store.campaign("sweep").backend
            assert backend_config_from_dict(stored) == config

    def test_build_realizes_fresh_instances(self):
        config = PoolBackendConfig(jobs=4)
        a, b = build(config), build(config)
        assert isinstance(a, ExecutorBackend)
        assert a is not b
        assert a.jobs == 4
        assert build(InlineBackendConfig()).jobs == 1

    def test_build_rejects_unknown_configs(self):
        with pytest.raises(TypeError):
            build(object())
        with pytest.raises(ValueError):
            backend_config_from_dict({"kind": "warp-cluster"})

    def test_register_backend_extends_the_registry(self):
        @dataclasses.dataclass(frozen=True)
        class NullConfig:
            kind = "test_null"

            def to_dict(self):
                return {"kind": self.kind}

        marker = object()
        register_backend("test_null", lambda data: NullConfig(), lambda c: marker)
        assert "test_null" in registered_backend_kinds()
        assert build(NullConfig()) is marker
        assert backend_config_from_dict({"kind": "test_null"}) == NullConfig()


class TestCampaignRunner:
    def test_requires_cache_dir(self, tmp_path):
        with CampaignStore(tmp_path / "c.db") as store:
            with pytest.raises(ValueError):
                CampaignRunner(store, "sweep")

    def test_submit_drain_fetch(self, tmp_path):
        specs = bulk_specs(3)
        with CampaignStore(tmp_path / "c.db") as store:
            runner = CampaignRunner(store, "sweep", cache_dir=tmp_path / "cache")
            assert runner.submit(specs) == 3
            assert runner.submit(specs) == 0  # idempotent
            counts = runner.drain()
            assert counts["done"] == 3 and counts["failed"] == 0
            results = runner.fetch(specs)
            assert [r.size for r in results] == [s.size for s in specs]
            assert all(isinstance(r, BulkDownloadResult) for r in results)

    def test_fetch_before_drain_raises(self, tmp_path):
        specs = bulk_specs(1)
        with CampaignStore(tmp_path / "c.db") as store:
            runner = CampaignRunner(store, "sweep", cache_dir=tmp_path / "cache")
            runner.submit(specs)
            with pytest.raises(CampaignError):
                runner.fetch(specs)

    def test_interrupted_drain_resumes_from_sqlite(self, tmp_path):
        db, cache = tmp_path / "c.db", tmp_path / "cache"
        specs = bulk_specs(4)
        with CampaignStore(db) as store:
            runner = CampaignRunner(store, "sweep", cache_dir=cache)
            runner.submit(specs)
            counts = runner.drain(limit=2)
            assert counts["done"] == 2 and counts["pending"] == 2
            # Simulate the crash: one job claimed but never finished.
            store.claim(runner.campaign_id, spec_hash(specs[2]))
            assert runner.status()["running"] == 1
        # A fresh process reopens the same store and just drains: the
        # orphan is reset, the rest run, the finished two stay done.
        with CampaignStore(db) as store:
            runner = CampaignRunner(store, "sweep", cache_dir=cache)
            counts = runner.drain()
            assert counts == {"pending": 0, "running": 0, "done": 4, "failed": 0}
            assert len(runner.fetch(specs)) == 4

    def test_resumed_jobs_hit_the_cache(self, tmp_path):
        """The acceptance criterion: a resume re-drains as cache hits."""
        cache = tmp_path / "cache"
        specs = bulk_specs(3)
        with CampaignStore(tmp_path / "first.db") as store:
            CampaignRunner(store, "sweep", cache_dir=cache).run(specs)
        # Same specs, same cache, fresh campaign state: every job must
        # journal as "cached" -- nothing re-simulates.
        with CampaignStore(tmp_path / "second.db") as store:
            runner = CampaignRunner(
                store, "sweep", cache_dir=cache,
                journal=tmp_path / "second.journal.jsonl",
            )
            runner.submit(specs)
            counts = runner.drain()
            assert counts["done"] == 3
            jobs = store.journal_records(runner.campaign_id, record="job")
            assert [r["status"] for r in jobs] == ["cached"] * 3

    def test_failed_job_requeues_then_succeeds(self, tmp_path):
        spec = FlakySpec(marker=str(tmp_path / "marker"), succeed_after=2)
        with CampaignStore(tmp_path / "c.db") as store:
            runner = CampaignRunner(store, "sweep", cache_dir=tmp_path / "cache")
            runner.submit([spec])
            counts = runner.drain()
            assert counts["failed"] == 1
            (failure,) = runner.failures()
            assert failure.error_type == "RuntimeError"
            assert "attempt 1" in failure.error_message
            assert runner.requeue() == 1
            counts = runner.drain()
            assert counts == {"pending": 0, "running": 0, "done": 1, "failed": 0}
            (result,) = runner.fetch([spec])
            assert result.attempts == 2

    def test_requeue_gives_up_at_the_attempt_cap(self, tmp_path):
        spec = FlakySpec(marker=str(tmp_path / "marker"), succeed_after=99)
        with CampaignStore(tmp_path / "c.db") as store:
            runner = CampaignRunner(
                store, "sweep", cache_dir=tmp_path / "cache", max_attempts=2
            )
            runner.submit([spec])
            runner.drain()
            assert runner.requeue() == 1
            runner.drain()
            assert runner.status()["failed"] == 1
            assert runner.requeue() == 0  # both attempts burned
            job = store.job(runner.campaign_id, spec_hash(spec))
            assert job.attempts == 2

    def test_reopening_resumes_the_stored_backend(self, tmp_path):
        db = tmp_path / "c.db"
        with CampaignStore(db) as store:
            CampaignRunner(
                store, "sweep",
                backend=PoolBackendConfig(jobs=2),
                cache_dir=tmp_path / "cache",
            )
        with CampaignStore(db) as store:
            runner = CampaignRunner(store, "sweep", cache_dir=tmp_path / "cache")
            assert runner.backend_config == PoolBackendConfig(jobs=2)

    def test_runner_is_an_executor_drop_in(self, tmp_path):
        with CampaignStore(tmp_path / "c.db") as store:
            runner = CampaignRunner(store, "fig18", cache_dir=tmp_path / "cache")
            matrix = wget_matrix(
                ("minrtt",), (64 * 1024,), (1.0,), (2.0, 8.0), executor=runner,
            )
            assert set(matrix) == {
                (64 * 1024, 1.0, 2.0, "minrtt"),
                (64 * 1024, 1.0, 8.0, "minrtt"),
            }
            assert runner.status()["done"] == 2

    def test_pool_backend_drains_a_campaign(self, tmp_path):
        specs = bulk_specs(3)
        with CampaignStore(tmp_path / "c.db") as store:
            runner = CampaignRunner(
                store, "sweep",
                backend=PoolBackendConfig(jobs=2),
                cache_dir=tmp_path / "cache",
            )
            counts = runner.run(specs) and runner.status()
            assert counts["done"] == 3


class TestConcurrentDrain:
    """Two runners on one campaign: atomic claims partition the work."""

    @staticmethod
    def _flaky_specs(tmp_path, n):
        # succeed_after=1: each job succeeds on its first attempt, so any
        # attempts > 1 below can only mean a double execution.
        return [
            FlakySpec(marker=str(tmp_path / f"marker-{i}.txt"), succeed_after=1)
            for i in range(n)
        ]

    def test_claim_race_has_one_winner(self, tmp_path):
        db = tmp_path / "c.db"
        with CampaignStore(db) as a, CampaignStore(db) as b:
            cid = a.ensure_campaign("sweep", {"kind": "inline"})
            (spec,) = self._flaky_specs(tmp_path, 1)
            a.add_jobs(cid, [spec])
            key = spec_hash(spec)
            wins = [a.claim(cid, key), b.claim(cid, key)]
            assert sorted(wins) == [False, True]
            assert a.job(cid, key).attempts == 1

    def test_two_runners_split_the_jobs(self, tmp_path):
        import threading

        db = tmp_path / "c.db"
        specs = self._flaky_specs(tmp_path, 8)
        with CampaignStore(db) as store:
            runner = CampaignRunner(store, "sweep", cache_dir=tmp_path / "cache")
            runner.submit(specs)

        errors = []

        def drain_all(worker: str) -> None:
            # Each worker opens its own connection (sqlite3 connections
            # are thread-bound) and never resets orphans: a live peer's
            # running jobs are not up for grabs.
            try:
                with CampaignStore(db) as store:
                    worker_runner = CampaignRunner(
                        store, "sweep", cache_dir=tmp_path / "cache"
                    )
                    while True:
                        counts = worker_runner.drain(
                            limit=1, reset_orphans=False
                        )
                        if counts["pending"] == 0:
                            break
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append((worker, exc))

        threads = [
            threading.Thread(target=drain_all, args=(name,))
            for name in ("alpha", "beta")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert errors == []

        with CampaignStore(db) as store:
            runner = CampaignRunner(store, "sweep", cache_dir=tmp_path / "cache")
            counts = runner.status()
            assert counts["done"] == 8
            assert counts["pending"] == counts["running"] == counts["failed"] == 0
            # The invariant the atomic claim buys: no job ran twice.
            for spec in specs:
                job = store.job(runner.campaign_id, spec_hash(spec))
                assert job.attempts == 1
