"""Tests for multi-hop topologies and the results exporters."""

import json

import pytest

from repro.core.registry import make_scheduler
from repro.experiments.runner import StreamingRunConfig, run_streaming
from repro.metrics.export import (
    load_streaming_results_json,
    streaming_result_to_dict,
    write_cdf_csv,
    write_matrix_csv,
    write_series_csv,
    write_streaming_results_json,
)
from repro.mptcp.connection import ConnectionConfig, MptcpConnection
from repro.net.packet import Packet
from repro.net.topology import CompositeForward, LinkSpec, chain_path, shared_bottleneck


class TestCompositeForward:
    def test_requires_hops(self):
        with pytest.raises(ValueError):
            CompositeForward([])

    def test_bottleneck_rate_and_total_delay(self, sim):
        chain = CompositeForward([
            LinkSpec(10.0, 0.01).build(sim, None, "h0"),
            LinkSpec(2.0, 0.03).build(sim, None, "h1"),
        ])
        assert chain.rate_bps == 2e6
        assert chain.delay == pytest.approx(0.04)

    def test_packet_traverses_all_hops(self, sim):
        chain = CompositeForward([
            LinkSpec(10.0, 0.01).build(sim, None, "h0"),
            LinkSpec(10.0, 0.02).build(sim, None, "h1"),
        ])
        arrivals = []
        chain.send(Packet(size=1250), lambda p: arrivals.append(sim.now))
        sim.run()
        # Two serializations (1 ms each) + 30 ms propagation.
        assert arrivals == [pytest.approx(0.032)]

    def test_drop_at_second_hop_counts(self, sim):
        first = LinkSpec(100.0, 0.0, queue_bytes=1_000_000).build(sim, None, "h0")
        second = LinkSpec(0.1, 0.0, queue_bytes=1_500).build(sim, None, "h1")
        chain = CompositeForward([first, second])
        delivered = []
        for _ in range(10):
            chain.send(Packet(size=1000), lambda p: delivered.append(p))
        sim.run()
        assert chain.total_drops() > 0
        assert len(delivered) + chain.total_drops() == 10

    def test_set_rate_touches_entry_hop(self, sim):
        chain = CompositeForward([
            LinkSpec(10.0, 0.01).build(sim, None, "h0"),
            LinkSpec(20.0, 0.01).build(sim, None, "h1"),
        ])
        chain.set_rate(5e6)
        assert chain.hops[0].rate_bps == 5e6
        assert chain.hops[1].rate_bps == 20e6


class TestChainPath:
    def test_mptcp_over_multihop_path_completes(self, sim):
        path = chain_path(
            sim, "multihop",
            [LinkSpec(10.0, 0.005), LinkSpec(5.0, 0.01), LinkSpec(8.0, 0.005)],
        )
        conn = MptcpConnection(
            sim, [path], make_scheduler("minrtt"),
            config=ConnectionConfig(handshake_delays=False),
        )
        conn.write(1_000_000)
        sim.run(until=60.0)
        assert conn.delivered_bytes == 1_000_000

    def test_goodput_limited_by_bottleneck_hop(self, sim):
        path = chain_path(
            sim, "multihop",
            [LinkSpec(50.0, 0.005), LinkSpec(2.0, 0.01)],
        )
        conn = MptcpConnection(
            sim, [path], make_scheduler("minrtt"),
            config=ConnectionConfig(handshake_delays=False),
        )
        conn.write(2_000_000)
        sim.run(until=120.0)
        elapsed = max(conn.receiver.last_arrival_by_subflow.values())
        goodput_mbps = 2_000_000 * 8 / elapsed / 1e6
        assert goodput_mbps <= 2.0


class TestSharedBottleneck:
    def test_two_subflows_contend_for_shared_link(self, sim):
        paths = shared_bottleneck(
            sim,
            access_a=LinkSpec(20.0, 0.005, name="a"),
            access_b=LinkSpec(20.0, 0.02, name="b"),
            bottleneck=LinkSpec(5.0, 0.01, name="bn"),
        )
        conn = MptcpConnection(
            sim, paths, make_scheduler("minrtt"),
            config=ConnectionConfig(handshake_delays=False),
        )
        conn.write(3_000_000)
        sim.run(until=120.0)
        assert conn.delivered_bytes == 3_000_000
        elapsed = max(conn.receiver.last_arrival_by_subflow.values())
        goodput_mbps = 3_000_000 * 8 / elapsed / 1e6
        # Two subflows cannot exceed the single 5 Mbps shared bottleneck.
        assert goodput_mbps <= 5.0

    def test_coupled_cc_yields_to_bottleneck_capacity(self, sim):
        """With coupled CC over a shared bottleneck, the aggregate stays
        near what a single flow would get (no 2x grab)."""
        paths = shared_bottleneck(
            sim,
            access_a=LinkSpec(20.0, 0.005, name="a"),
            access_b=LinkSpec(20.0, 0.006, name="b"),
            bottleneck=LinkSpec(4.0, 0.01, name="bn"),
        )
        conn = MptcpConnection(
            sim, paths, make_scheduler("roundrobin"),
            config=ConnectionConfig(handshake_delays=False, congestion_control="coupled"),
        )
        conn.write(2_000_000)
        sim.run(until=120.0)
        assert conn.delivered_bytes == 2_000_000


class TestExport:
    def test_series_csv_roundtrip(self, tmp_path):
        target = tmp_path / "series.csv"
        write_series_csv(target, [(1.0, 2.0), (3.0, 4.0)])
        lines = target.read_text().strip().splitlines()
        assert lines[0] == "x,y"
        assert lines[1] == "1.0,2.0"

    def test_cdf_csv(self, tmp_path):
        target = tmp_path / "cdf.csv"
        write_cdf_csv(target, [1.0, 2.0, 2.0, 5.0])
        lines = target.read_text().strip().splitlines()
        assert lines[0] == "value,cdf"
        assert len(lines) == 4  # header + 3 distinct values

    def test_ccdf_csv(self, tmp_path):
        target = tmp_path / "ccdf.csv"
        write_cdf_csv(target, [1.0, 2.0], complementary=True)
        assert "ccdf" in target.read_text().splitlines()[0]

    def test_matrix_csv(self, tmp_path):
        target = tmp_path / "matrix.csv"
        write_matrix_csv(target, {(0.3, 8.6): 0.7, (8.6, 8.6): 0.9})
        lines = target.read_text().strip().splitlines()
        assert lines[0] == "wifi_mbps,lte_mbps,value"
        assert len(lines) == 3

    def test_writers_create_parent_directories(self, tmp_path):
        # Regression: writers used to fail with FileNotFoundError when
        # pointed at a fresh output tree (e.g. results/run3/cdf.csv).
        deep = tmp_path / "results" / "run3"
        write_series_csv(deep / "series.csv", [(1.0, 2.0)])
        write_cdf_csv(deep / "sub" / "cdf.csv", [1.0, 2.0])
        write_matrix_csv(deep / "matrix" / "m.csv", {(0.3, 8.6): 0.7})
        assert (deep / "series.csv").exists()
        assert (deep / "sub" / "cdf.csv").exists()
        assert (deep / "matrix" / "m.csv").exists()
        result = run_streaming(StreamingRunConfig(
            scheduler="minrtt", wifi_mbps=4.2, lte_mbps=8.6, video_duration=6.0
        ))
        write_streaming_results_json(deep / "json" / "runs.json", [result])
        assert load_streaming_results_json(deep / "json" / "runs.json")

    def test_streaming_results_json_roundtrip(self, tmp_path):
        result = run_streaming(StreamingRunConfig(
            scheduler="ecf", wifi_mbps=4.2, lte_mbps=8.6, video_duration=15.0
        ))
        target = tmp_path / "runs.json"
        write_streaming_results_json(target, [result])
        loaded = load_streaming_results_json(target)
        assert len(loaded) == 1
        assert loaded[0]["scheduler"] == "ecf"
        assert loaded[0]["chunks"]
        assert loaded[0]["average_bitrate_bps"] == pytest.approx(
            result.average_bitrate_bps
        )

    def test_load_rejects_non_array(self, tmp_path):
        target = tmp_path / "bad.json"
        target.write_text(json.dumps({"not": "a list"}))
        with pytest.raises(ValueError):
            load_streaming_results_json(target)

    def test_result_dict_is_json_serializable(self):
        result = run_streaming(StreamingRunConfig(
            scheduler="minrtt", wifi_mbps=8.6, lte_mbps=8.6, video_duration=10.0
        ))
        json.dumps(streaming_result_to_dict(result))
