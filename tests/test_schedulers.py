"""Tests for the path schedulers: the ECF contribution and its baselines."""

import pytest

from repro.core import (
    BlestScheduler,
    DapsScheduler,
    EcfScheduler,
    MinRttScheduler,
    PrimaryOnlyScheduler,
    RoundRobinScheduler,
    SCHEDULER_NAMES,
    make_scheduler,
)
from tests.conftest import build_connection, drain


def prepared_conn(sim, scheduler_name="minrtt", fast=(10.0, 0.005), slow=(1.0, 0.05), **kw):
    """Connection over a fast and a slow path with warmed RTT estimates."""
    conn = build_connection(sim, scheduler_name=scheduler_name, path_specs=(fast, slow), **kw)
    fast_sf, slow_sf = conn.subflows
    fast_sf.rtt.add_sample(0.010)
    slow_sf.rtt.add_sample(0.100)
    return conn, fast_sf, slow_sf


def fill_window(subflow):
    """Make the subflow's congestion window appear full."""
    subflow._in_flight = int(subflow.cwnd)


class TestRegistry:
    @pytest.mark.parametrize("name", SCHEDULER_NAMES)
    def test_all_names_construct(self, name):
        scheduler = make_scheduler(name)
        assert scheduler.name in (name, "minrtt")

    def test_default_alias(self):
        assert isinstance(make_scheduler("default"), MinRttScheduler)

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            make_scheduler("nope")

    def test_params_forwarded(self):
        assert make_scheduler("ecf", beta=0.5).beta == 0.5

    def test_instances_are_fresh(self):
        assert make_scheduler("ecf") is not make_scheduler("ecf")


class TestSchedulerContract:
    """Every scheduler must only ever return sendable subflows."""

    @pytest.mark.parametrize("name", SCHEDULER_NAMES)
    def test_selected_subflow_can_send(self, sim, name):
        conn, fast_sf, slow_sf = prepared_conn(sim, name)
        conn.unassigned_bytes = 10 * conn.mss
        choice = conn.scheduler.select(conn)
        if choice is not None:
            assert choice.can_send()

    @pytest.mark.parametrize("name", SCHEDULER_NAMES)
    def test_none_when_all_full(self, sim, name):
        conn, fast_sf, slow_sf = prepared_conn(sim, name)
        fill_window(fast_sf)
        fill_window(slow_sf)
        conn.unassigned_bytes = 10 * conn.mss
        assert conn.scheduler.select(conn) is None

    @pytest.mark.parametrize("name", SCHEDULER_NAMES)
    def test_transfer_completes(self, sim, name):
        conn = build_connection(sim, scheduler_name=name)
        conn.write(2_000_000)
        drain(sim)
        assert conn.delivered_bytes == 2_000_000

    def test_attach_rejects_second_connection(self, sim):
        conn = build_connection(sim)
        with pytest.raises(RuntimeError):
            conn.scheduler.attach(build_connection(sim))


class TestNonFiniteEstimates:
    """Outage paths report inf transit estimates; schedulers must not
    plan traffic onto them or let inf/NaN poison comparisons."""

    def test_fastest_skips_nonfinite_srtt(self, sim):
        from repro.core.base import Scheduler

        conn, fast_sf, slow_sf = prepared_conn(sim)
        fast_sf.rtt = type(fast_sf.rtt)()  # no samples
        fast_sf._default_rtt = float("inf")
        assert Scheduler.fastest(list(conn.subflows)) is slow_sf

    def test_fastest_none_when_all_nonfinite(self, sim):
        from repro.core.base import Scheduler

        conn, fast_sf, slow_sf = prepared_conn(sim)
        for sf in conn.subflows:
            sf.rtt = type(sf.rtt)()
            sf._default_rtt = float("nan")
        assert Scheduler.fastest(list(conn.subflows)) is None

    def test_minrtt_avoids_path_with_infinite_estimate(self, sim):
        conn, fast_sf, slow_sf = prepared_conn(sim)
        fast_sf.rtt = type(fast_sf.rtt)()
        fast_sf._default_rtt = float("inf")
        conn.unassigned_bytes = 10 * conn.mss
        assert conn.scheduler.select(conn) is slow_sf

    def test_ecf_sends_on_slow_when_fast_rtt_infinite(self):
        from repro.core.ecf import EcfInputs

        scheduler = EcfScheduler()
        inputs = EcfInputs(
            k_segments=4.0, rtt_f=float("inf"), rtt_s=0.1,
            cwnd_f=10.0, cwnd_s=10.0, delta=0.0, n_rounds=2.0, threshold=0.1,
        )
        assert scheduler._evaluate(inputs) is False

    def test_ecf_waits_when_slow_rtt_infinite(self):
        from repro.core.ecf import EcfInputs

        scheduler = EcfScheduler()
        inputs = EcfInputs(
            k_segments=4.0, rtt_f=0.01, rtt_s=float("inf"),
            cwnd_f=10.0, cwnd_s=10.0, delta=0.0, n_rounds=2.0,
            threshold=float("inf"),
        )
        assert scheduler._evaluate(inputs) is True

    def test_ecf_select_survives_outage_estimates(self, sim):
        conn, fast_sf, slow_sf = prepared_conn(sim, scheduler_name="ecf")
        for sf in conn.subflows:
            sf.rtt = type(sf.rtt)()
            sf._default_rtt = float("inf")
        conn.unassigned_bytes = 10 * conn.mss
        assert conn.scheduler.select(conn) is None


class TestMinRtt:
    def test_prefers_lowest_rtt(self, sim):
        conn, fast_sf, slow_sf = prepared_conn(sim)
        assert conn.scheduler.select(conn) is fast_sf

    def test_falls_back_when_fast_full(self, sim):
        conn, fast_sf, slow_sf = prepared_conn(sim)
        fill_window(fast_sf)
        assert conn.scheduler.select(conn) is slow_sf

    def test_never_waits_while_any_subflow_open(self, sim):
        conn, fast_sf, slow_sf = prepared_conn(sim)
        fill_window(fast_sf)
        for _ in range(5):
            assert conn.scheduler.select(conn) is slow_sf


class TestEcfAlgorithm:
    """Branch-level checks of Algorithm 1."""

    def test_fast_subflow_used_when_available(self, sim):
        conn, fast_sf, slow_sf = prepared_conn(sim, "ecf")
        assert conn.scheduler.select(conn) is fast_sf

    def test_paper_worked_example_waits(self, sim):
        """Section 3.2: RTTs 10 ms vs 100 ms, CWND 10 each, 1 packet left.

        Sending the leftover packet on the slow subflow finishes at 100 ms;
        waiting for the fast subflow finishes at ~20 ms.  ECF must wait.
        """
        conn, fast_sf, slow_sf = prepared_conn(sim, "ecf")
        fast_sf.cwnd = slow_sf.cwnd = 10.0
        fill_window(fast_sf)
        conn.unassigned_bytes = conn.mss  # k = 1 packet
        assert conn.scheduler.select(conn) is None
        assert conn.scheduler.waiting

    def test_large_backlog_uses_slow_subflow(self, sim):
        """With many packets left, extra bandwidth beats waiting."""
        conn, fast_sf, slow_sf = prepared_conn(sim, "ecf")
        fast_sf.cwnd = slow_sf.cwnd = 10.0
        fill_window(fast_sf)
        conn.unassigned_bytes = 1000 * conn.mss  # k >> cwnd_f
        assert conn.scheduler.select(conn) is slow_sf

    def test_first_inequality_boundary(self, sim):
        """k around cwnd_f * (RTT_s/RTT_f - 1) flips the decision."""
        conn, fast_sf, slow_sf = prepared_conn(sim, "ecf")
        fast_sf.cwnd = slow_sf.cwnd = 10.0
        fill_window(fast_sf)
        # RTT_f = 10 ms, RTT_s = 100 ms, sigma = 0 => wait iff (1+k/10)*10 < 100
        # i.e. k < 90 segments -- and the second inequality also holds.
        conn.unassigned_bytes = 50 * conn.mss
        assert conn.scheduler.select(conn) is None
        conn.scheduler.waiting = False
        conn.unassigned_bytes = 120 * conn.mss
        assert conn.scheduler.select(conn) is slow_sf

    @staticmethod
    def _near_tie_setup(sim, scheduler_name):
        """RTT_s < 2*RTT_f + delta: the slow path finishes one round of k
        before the fast path could even complete its waiting round, so the
        second inequality rejects waiting (while the delta margin still
        lets the first inequality pass)."""
        conn, fast_sf, slow_sf = prepared_conn(sim, scheduler_name)
        # Fast path: srtt ~ 50 ms with high variability (sigma ~ 40 ms).
        for sample in (0.01, 0.09, 0.01, 0.09, 0.01, 0.09):
            fast_sf.rtt.add_sample(sample)
        fast_sf.rtt.srtt = 0.05
        slow_sf.rtt.srtt = 0.08
        fast_sf.cwnd = slow_sf.cwnd = 10.0
        fill_window(fast_sf)
        conn.unassigned_bytes = 5 * conn.mss  # one round on either path
        return conn, fast_sf, slow_sf

    def test_second_inequality_blocks_wait_for_near_tie(self, sim):
        """RTT_s barely above RTT_f: waiting cannot beat sending now."""
        conn, fast_sf, slow_sf = self._near_tie_setup(sim, "ecf")
        assert conn.scheduler.select(conn) is slow_sf
        assert not conn.scheduler.waiting

    def test_second_inequality_can_be_disabled(self, sim):
        conn, fast_sf, slow_sf = self._near_tie_setup(sim, "ecf")
        conn.scheduler.use_second_inequality = False
        # Without the second check, the first inequality alone says wait.
        assert conn.scheduler.select(conn) is None

    def test_hysteresis_keeps_waiting_state(self, sim):
        """Once waiting, the threshold is inflated by (1 + beta)."""
        conn, fast_sf, slow_sf = prepared_conn(sim, "ecf")
        scheduler = conn.scheduler
        fast_sf.cwnd = slow_sf.cwnd = 10.0
        fill_window(fast_sf)
        # Pick k so that n*RTT_f sits between the plain and inflated
        # thresholds: plain = 100 ms, inflated = 125 ms => n in (10, 12.5).
        conn.unassigned_bytes = 105 * conn.mss  # n = 11.5 -> 115 ms
        assert scheduler.select(conn) is slow_sf  # not waiting: 115 >= 100
        scheduler.waiting = True
        assert scheduler.select(conn) is None  # waiting: 115 < 125

    def test_waiting_cleared_when_first_inequality_fails(self, sim):
        conn, fast_sf, slow_sf = prepared_conn(sim, "ecf")
        scheduler = conn.scheduler
        scheduler.waiting = True
        fast_sf.cwnd = slow_sf.cwnd = 10.0
        fill_window(fast_sf)
        conn.unassigned_bytes = 1000 * conn.mss
        assert scheduler.select(conn) is slow_sf
        assert not scheduler.waiting

    def test_sigma_margin_widens_wait_region(self, sim):
        conn, fast_sf, slow_sf = prepared_conn(sim, "ecf")
        fast_sf.cwnd = slow_sf.cwnd = 10.0
        fill_window(fast_sf)
        conn.unassigned_bytes = 95 * conn.mss  # just outside: n*RTT_f=105ms
        assert conn.scheduler.select(conn) is slow_sf
        # Inflate the slow path's RTT variability: delta grows, now waits.
        for r in (0.05, 0.2, 0.05, 0.2, 0.05, 0.2):
            slow_sf.rtt.add_sample(r)
        slow_sf.rtt.srtt = 0.1  # keep the mean comparable
        conn.scheduler.waiting = False
        assert conn.scheduler.select(conn) is None

    def test_beta_validation(self):
        with pytest.raises(ValueError):
            EcfScheduler(beta=-0.1)

    def test_wait_statistics_counted(self, sim):
        conn, fast_sf, slow_sf = prepared_conn(sim, "ecf")
        fast_sf.cwnd = slow_sf.cwnd = 10.0
        fill_window(fast_sf)
        conn.unassigned_bytes = conn.mss
        conn.scheduler.select(conn)
        assert conn.scheduler.wait_decisions == 1


class TestBlest:
    def test_uses_fast_subflow_when_open(self, sim):
        conn, fast_sf, slow_sf = prepared_conn(sim, "blest")
        assert conn.scheduler.select(conn) is fast_sf

    def test_waits_when_send_window_would_block(self, sim):
        conn, fast_sf, slow_sf = prepared_conn(
            sim, "blest", send_window_bytes=60_000
        )
        fast_sf.cwnd = 30.0
        fill_window(fast_sf)
        slow_sf.cwnd = 10.0
        conn.unassigned_bytes = 100 * conn.mss
        # Fast path could push ~ 30 * 10 rounds * mss >> 60 kB window.
        assert conn.scheduler.select(conn) is None
        assert conn.scheduler.wait_decisions == 1

    def test_sends_on_slow_when_window_ample(self, sim):
        conn, fast_sf, slow_sf = prepared_conn(
            sim, "blest", send_window_bytes=50_000_000
        )
        fast_sf.cwnd = 10.0
        fill_window(fast_sf)
        conn.unassigned_bytes = 100 * conn.mss
        assert conn.scheduler.select(conn) is slow_sf

    def test_lambda_grows_on_observed_blocking(self, sim):
        conn, fast_sf, slow_sf = prepared_conn(sim, "blest")
        scheduler = conn.scheduler
        before = scheduler.lambda_
        conn.reinjections = 5
        scheduler.select(conn)
        assert scheduler.lambda_ > before


class TestDaps:
    def test_schedule_interleaves_by_rtt_ratio(self, sim):
        conn, fast_sf, slow_sf = prepared_conn(sim, "daps")
        fast_sf.cwnd = slow_sf.cwnd = 10.0
        scheduler = conn.scheduler
        conn.unassigned_bytes = 100 * conn.mss
        picks = []
        for _ in range(20):
            choice = scheduler.select(conn)
            if choice is None:
                break
            picks.append(choice.sf_id)
            choice._in_flight += 1
        # All of the fast subflow's slots project earlier arrivals than any
        # slow-path slot, so the schedule front-loads the fast path.
        assert picks[:10] == [0] * 10
        assert 1 in picks  # but the slow path is still used

    def test_never_waits_when_any_subflow_open(self, sim):
        conn, fast_sf, slow_sf = prepared_conn(sim, "daps")
        fill_window(fast_sf)
        conn.unassigned_bytes = 100 * conn.mss
        assert conn.scheduler.select(conn) is slow_sf

    def test_single_subflow_degenerates(self, sim):
        conn = build_connection(sim, scheduler_name="daps", path_specs=((10.0, 0.01),))
        conn.unassigned_bytes = conn.mss
        assert conn.scheduler.select(conn) is conn.subflows[0]

    def test_schedule_rebuilt_when_exhausted(self, sim):
        conn, fast_sf, slow_sf = prepared_conn(sim, "daps")
        scheduler = conn.scheduler
        conn.unassigned_bytes = 1000 * conn.mss
        for _ in range(50):
            choice = scheduler.select(conn)
            if choice is None:
                break
        assert scheduler.schedules_built >= 2


class TestExtras:
    def test_roundrobin_cycles(self, sim):
        conn, fast_sf, slow_sf = prepared_conn(sim, "roundrobin")
        first = conn.scheduler.select(conn)
        first._in_flight += 1
        second = conn.scheduler.select(conn)
        assert {first.sf_id, second.sf_id} == {0, 1}

    def test_primary_only_ignores_secondary(self, sim):
        conn, fast_sf, slow_sf = prepared_conn(sim, "primary")
        fill_window(fast_sf)
        assert conn.scheduler.select(conn) is None

    def test_primary_only_transfer_uses_one_path(self, sim):
        conn = build_connection(sim, scheduler_name="primary")
        conn.write(1_000_000)
        drain(sim)
        assert conn.subflows[1].stats.payload_bytes_sent == 0
        assert conn.delivered_bytes == 1_000_000
