"""Tests for the parallel experiment executor and the spec protocol.

Covers the executor's contract end to end: cache hit/miss accounting,
byte-identical results at ``jobs=1`` vs ``jobs=N``, retry-after-timeout,
and (property-based) lossless spec round trips.
"""

import dataclasses
import json
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.bulk import BulkDownloadSpec
from repro.experiments.exec import (
    ExperimentError,
    ExperimentExecutor,
    ResultCache,
    RunTimeoutError,
    run_specs,
)
from repro.experiments.grid import streaming_grid, wget_matrix
from repro.experiments.runner import StreamingRunConfig, StreamingSpec
from repro.experiments.spec import (
    canonical_json,
    register_experiment,
    run_spec,
    spec_from_dict,
    spec_hash,
    spec_to_dict,
)
from repro.experiments.wild import WildStreamingSpec, run_wild
from repro.net.bandwidth import (
    BandwidthSpec,
    PiecewiseBandwidth,
    RandomBandwidthProcess,
    make_bandwidth_process,
)
from repro.net.profiles import lte_config, wifi_config
from repro.workloads.web import WebBrowsingSpec


def bulk_specs(n=4, size=64 * 1024):
    return [
        BulkDownloadSpec(
            scheduler="ecf",
            path_configs=(wifi_config(2.0), lte_config(float(2 + i))),
            size=size,
            seed=i,
        )
        for i in range(n)
    ]


class TestSpecHash:
    def test_stable_across_instances(self):
        a, b = bulk_specs(1)[0], bulk_specs(1)[0]
        assert a is not b
        assert spec_hash(a) == spec_hash(b)

    def test_differs_by_any_field(self):
        base = bulk_specs(1)[0]
        assert spec_hash(base) != spec_hash(dataclasses.replace(base, seed=99))
        assert spec_hash(base) != spec_hash(dataclasses.replace(base, size=1))

    def test_survives_wire_round_trip(self):
        spec = StreamingSpec(scheduler="ecf", wifi_mbps=1.1, seed=4)
        again = spec_from_dict(json.loads(json.dumps(spec_to_dict(spec))))
        assert again == spec
        assert spec_hash(again) == spec_hash(spec)


class TestCacheBehavior:
    def test_miss_then_hit(self, tmp_path):
        specs = bulk_specs(3)
        first = ExperimentExecutor(cache_dir=tmp_path)
        results = first.run(specs)
        assert first.stats.executed == 3 and first.stats.cached == 0

        second = ExperimentExecutor(cache_dir=tmp_path)
        warm = second.run(specs)
        assert second.stats.executed == 0 and second.stats.cached == 3
        for a, b in zip(results, warm):
            assert canonical_json(a.to_dict()) == canonical_json(b.to_dict())

    def test_partial_campaign_executes_only_missing_cells(self, tmp_path):
        specs = bulk_specs(4)
        ExperimentExecutor(cache_dir=tmp_path).run(specs[:2])
        resumed = ExperimentExecutor(cache_dir=tmp_path)
        resumed.run(specs)
        assert resumed.stats.cached == 2 and resumed.stats.executed == 2

    def test_no_cache_bypasses_configured_dir(self, tmp_path):
        specs = bulk_specs(2)
        ExperimentExecutor(cache_dir=tmp_path).run(specs)
        fresh = ExperimentExecutor(cache_dir=tmp_path, use_cache=False)
        fresh.run(specs)
        assert fresh.stats.executed == 2 and fresh.stats.cached == 0

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        spec = bulk_specs(1)[0]
        ExperimentExecutor(cache_dir=tmp_path).run([spec])
        cache = ResultCache(tmp_path)
        cache.path_for(spec_hash(spec)).write_text("{ truncated")
        again = ExperimentExecutor(cache_dir=tmp_path)
        again.run([spec])
        assert again.stats.executed == 1

    def test_cache_entry_is_self_describing(self, tmp_path):
        spec = bulk_specs(1)[0]
        ExperimentExecutor(cache_dir=tmp_path).run([spec])
        entry = ResultCache(tmp_path).get(spec_hash(spec))
        assert entry["kind"] == "bulk_download"
        assert entry["spec"] == spec.to_dict()
        assert entry["result"]["completion_time"] > 0


class TestParallelDeterminism:
    def test_jobs1_vs_jobsN_byte_identical(self):
        specs = bulk_specs(5)
        serial = run_specs(specs, jobs=1)
        parallel = run_specs(specs, jobs=3)
        for a, b in zip(serial, parallel):
            assert canonical_json(a.to_dict()) == canonical_json(b.to_dict())

    def test_streaming_grid_parallel_matches_serial(self, tmp_path):
        base = StreamingRunConfig(scheduler="minrtt", video_duration=10.0, seed=1)
        serial = streaming_grid(base, (0.7, 8.6), (8.6,))
        executor = ExperimentExecutor(jobs=2, cache_dir=tmp_path)
        parallel = streaming_grid(base, (0.7, 8.6), (8.6,), executor=executor)
        assert executor.stats.executed == 2
        for cell in serial:
            for a, b in zip(serial[cell], parallel[cell]):
                assert canonical_json(a.to_dict()) == canonical_json(b.to_dict())

        warm = ExperimentExecutor(jobs=2, cache_dir=tmp_path)
        streaming_grid(base, (0.7, 8.6), (8.6,), executor=warm)
        assert warm.stats.executed == 0 and warm.stats.cached == 2

    def test_results_in_submission_order(self):
        # Cells with very different runtimes must still come back in order.
        specs = [
            BulkDownloadSpec(
                scheduler="minrtt",
                path_configs=(wifi_config(float(w)), lte_config(8.6)),
                size=256 * 1024,
                seed=0,
            )
            for w in (0.3, 8.6, 1.1)
        ]
        results = run_specs(specs, jobs=3)
        for spec, result in zip(specs, results):
            assert result.size == spec.size
            assert result.scheduler == spec.scheduler
            assert "wifi" in result.payload_by_path


@dataclasses.dataclass(frozen=True)
class SlowSpec:
    """Test-only spec whose runner wedges until a marker file exists."""

    kind = "test_slow"

    marker: str
    sleep_s: float = 30.0

    def to_dict(self):
        return {"marker": self.marker, "sleep_s": self.sleep_s}

    @classmethod
    def from_dict(cls, data):
        return cls(**data)


@dataclasses.dataclass(frozen=True)
class SlowResult:
    attempts: int

    def to_dict(self):
        return {"attempts": self.attempts}

    @classmethod
    def from_dict(cls, data):
        return cls(**data)


def _run_slow(spec: SlowSpec) -> SlowResult:
    """Wedge (sleep) on the first attempt, succeed on the second.

    Attempt counting goes through the filesystem so it also works when
    the executor runs the spec in a pool worker.
    """
    import pathlib

    marker = pathlib.Path(spec.marker)
    if not marker.exists():
        marker.write_text("attempt 1")
        time.sleep(spec.sleep_s)
        return SlowResult(attempts=1)
    return SlowResult(attempts=2)


register_experiment("test_slow", SlowSpec.from_dict, _run_slow, SlowResult.from_dict)


class TestTimeoutAndRetry:
    def test_retry_after_timeout_inline(self, tmp_path):
        spec = SlowSpec(marker=str(tmp_path / "m1"))
        executor = ExperimentExecutor(jobs=1, timeout_s=0.3, retries=1)
        (result,) = executor.run([spec])
        assert result.attempts == 2
        assert executor.stats.retried == 1

    def test_exhausted_retries_raise(self, tmp_path):
        # sleep_s longer than timeout on every attempt: marker never helps
        # because the runner sleeps only on attempt 1 -- so force attempt 1
        # repeatedly by pointing each retry at the same wedged first pass.
        spec = SlowSpec(marker=str(tmp_path / "never"), sleep_s=30.0)

        def always_wedge(s):
            time.sleep(s.sleep_s)
            return SlowResult(attempts=0)

        register_experiment(
            "test_slow", SlowSpec.from_dict, always_wedge, SlowResult.from_dict
        )
        try:
            executor = ExperimentExecutor(jobs=1, timeout_s=0.2, retries=1)
            with pytest.raises(ExperimentError):
                executor.run([spec])
            assert executor.stats.retried == 1
        finally:
            register_experiment(
                "test_slow", SlowSpec.from_dict, _run_slow, SlowResult.from_dict
            )

    def test_timeout_unbounded_by_default(self, tmp_path):
        spec = SlowSpec(marker=str(tmp_path / "m2"), sleep_s=0.05)
        (result,) = ExperimentExecutor(jobs=1).run([spec])
        assert result.attempts == 1  # slept 0.05s and completed, no alarm

    def test_run_timeout_error_is_a_runtime_error(self):
        assert issubclass(RunTimeoutError, RuntimeError)


path_config_st = st.builds(
    wifi_config,
    rate_mbps=st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
    loss_rate=st.floats(min_value=0.0, max_value=0.1, allow_nan=False),
)

bandwidth_spec_st = st.one_of(
    st.builds(
        lambda r: PiecewiseBandwidth([(0.0, r)]).to_spec(),
        st.floats(min_value=1e5, max_value=1e8, allow_nan=False),
    ),
    st.builds(
        lambda seed, duration: RandomBandwidthProcess(seed, duration).to_spec(),
        st.integers(min_value=0, max_value=2**31),
        st.floats(min_value=1.0, max_value=1000.0, allow_nan=False),
    ),
)

streaming_spec_st = st.builds(
    StreamingSpec,
    scheduler=st.sampled_from(("minrtt", "ecf", "blest", "daps")),
    wifi_mbps=st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
    lte_mbps=st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
    video_duration=st.floats(min_value=5.0, max_value=2000.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**31),
    idle_reset_enabled=st.booleans(),
    subflows_per_interface=st.integers(min_value=1, max_value=4),
    wifi_process=st.none() | bandwidth_spec_st,
    path_configs=st.none() | st.tuples(path_config_st, path_config_st),
    record_traces=st.booleans(),
    time_limit=st.none() | st.floats(min_value=1.0, max_value=1e4, allow_nan=False),
)

bulk_spec_st = st.builds(
    BulkDownloadSpec,
    scheduler=st.sampled_from(("minrtt", "ecf")),
    path_configs=st.tuples(path_config_st, path_config_st),
    size=st.integers(min_value=1, max_value=10**8),
    seed=st.integers(min_value=0, max_value=2**31),
    timeout=st.floats(min_value=1.0, max_value=1e4, allow_nan=False),
)

web_spec_st = st.builds(
    WebBrowsingSpec,
    scheduler=st.sampled_from(("minrtt", "ecf")),
    path_configs=st.tuples(path_config_st),
    seed=st.integers(min_value=0, max_value=2**31),
    connections=st.integers(min_value=1, max_value=8),
    object_sizes=st.none()
    | st.tuples(st.integers(min_value=1, max_value=10**6)),
)


class TestSpecRoundTripProperty:
    """from_dict(to_dict(spec)) == spec, across the whole spec space.

    JSON-serialized in between, exactly as the cache and the pool wire
    format do, so tuple/list and int/float fidelity is exercised too.
    """

    @settings(max_examples=60, deadline=None)
    @given(spec=streaming_spec_st)
    def test_streaming_spec_round_trip(self, spec):
        again = StreamingSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again == spec
        assert spec_hash(again) == spec_hash(spec)

    @settings(max_examples=60, deadline=None)
    @given(spec=bulk_spec_st)
    def test_bulk_spec_round_trip(self, spec):
        again = BulkDownloadSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again == spec
        assert spec_hash(again) == spec_hash(spec)

    @settings(max_examples=60, deadline=None)
    @given(spec=web_spec_st)
    def test_web_spec_round_trip(self, spec):
        again = WebBrowsingSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again == spec
        assert spec_hash(again) == spec_hash(spec)

    @settings(max_examples=60, deadline=None)
    @given(spec=bandwidth_spec_st)
    def test_bandwidth_spec_round_trip(self, spec):
        again = BandwidthSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again == spec
        # And the spec constructs a live process of the right shape.
        process = make_bandwidth_process(again)
        assert hasattr(process, "attach")


class TestResultRoundTrip:
    def test_streaming_result_with_traces_and_processes(self):
        spec = StreamingSpec(
            scheduler="ecf",
            wifi_mbps=1.1,
            lte_mbps=8.6,
            video_duration=10.0,
            wifi_process=PiecewiseBandwidth([(0.0, 2e6), (4.0, 6e6)]),
            record_traces=True,
            sample_period=0.5,
        )
        result = run_spec(spec)
        data = json.loads(json.dumps(result.to_dict()))
        again = type(result).from_dict(data)
        assert canonical_json(again.to_dict()) == canonical_json(result.to_dict())
        assert again.trace is not None
        assert again.trace.names() == result.trace.names()
        assert again.config == result.config

    def test_schema_version_enforced(self):
        spec = StreamingSpec(video_duration=10.0)
        result = run_spec(spec)
        data = result.to_dict()
        data["schema_version"] = 1
        with pytest.raises(ValueError):
            type(result).from_dict(data)

    def test_serialized_form_carries_no_live_objects(self):
        spec = StreamingSpec(video_duration=10.0, record_traces=True)
        data = run_spec(spec).to_dict()
        json.dumps(data)  # would raise on any live object
        assert data["spec"]["scheduler"] == "minrtt"
        assert isinstance(data["trace"], dict)


class TestWildAndMatrixThroughExecutor:
    def test_wild_parallel_matches_serial(self):
        spec = WildStreamingSpec(runs=2, video_duration=10.0)
        serial = run_wild(spec)
        parallel = run_wild(spec, executor=ExperimentExecutor(jobs=2))
        assert canonical_json(serial.to_dict()) == canonical_json(parallel.to_dict())

    def test_wild_result_round_trip(self):
        result = run_wild(WildStreamingSpec(runs=2, video_duration=10.0))
        again = type(result).from_dict(json.loads(json.dumps(result.to_dict())))
        assert canonical_json(again.to_dict()) == canonical_json(result.to_dict())

    def test_wget_matrix_covers_all_cells(self, tmp_path):
        executor = ExperimentExecutor(jobs=2, cache_dir=tmp_path)
        matrix = wget_matrix(
            ("minrtt", "ecf"), (64 * 1024,), (1.0,), (2.0, 8.0),
            executor=executor,
        )
        assert set(matrix) == {
            (64 * 1024, 1.0, 2.0, "minrtt"),
            (64 * 1024, 1.0, 2.0, "ecf"),
            (64 * 1024, 1.0, 8.0, "minrtt"),
            (64 * 1024, 1.0, 8.0, "ecf"),
        }
        assert executor.stats.executed == 4
        warm = ExperimentExecutor(cache_dir=tmp_path)
        wget_matrix(("minrtt", "ecf"), (64 * 1024,), (1.0,), (2.0, 8.0), executor=warm)
        assert warm.stats.executed == 0 and warm.stats.cached == 4
