"""Tests for repro.obs: flight recorder, timeline export, run journal.

Covers lossless event round trips (every record kind), ring-buffer
bounding, uid non-aliasing across sequential connections, postmortem
bundle contents, the executor's failure path (bundle + journal), the
Perfetto exporter/validator, and the ``trace`` CLI front end.
"""

import json

import pytest

from repro.analysis import check, events
from repro.apps.bulk import BulkDownloadSpec, run_bulk
from repro.cli import main as cli_main
from repro.experiments.exec import ExperimentExecutor
from repro.experiments.runner import StreamingSpec
from repro.experiments.spec import spec_hash, spec_to_dict
from repro.net.profiles import lte_config, wifi_config
from repro.obs import flight, timeline
from repro.obs.journal import RunJournal, read_journal, summarize


def bulk_spec(scheduler="ecf", size=96_000, seed=3):
    return BulkDownloadSpec(
        scheduler=scheduler,
        path_configs=(wifi_config(8.6), lte_config(8.6)),
        size=size,
        seed=seed,
    )


def sample_events():
    """One instance of every concrete record kind."""
    return [
        events.Dispatch(t=0.0, seq=1),
        events.SegmentSent(
            t=0.1, sf_uid=3, sf_id=0, seq=2, dsn=1448, payload=1448,
            retransmitted=False, cwnd=10.0, in_flight=4,
        ),
        events.AckProcessed(
            t=0.2, sf_uid=3, sf_id=0, seq=2, rtt_sampled=True, cwnd=11.0,
            in_recovery=False, backoff=1.0,
        ),
        events.RtoFired(
            t=0.3, sf_uid=4, sf_id=1, backoff_before=1.0, backoff_after=2.0,
            rto=0.4, outstanding=3,
        ),
        events.FastRetransmit(t=0.4, sf_uid=4, sf_id=1, seq=9, recovery_point=12),
        events.IdleReset(
            t=0.5, sf_uid=3, sf_id=0, idle=1.2, rto=0.3, old_cwnd=40.0,
            new_cwnd=10.0, ssthresh=20.0,
        ),
        events.Delivered(t=0.6, recv_uid=7, dsn=2896, payload=1448, delay=0.05),
        events.Reinjection(
            t=0.7, conn="dash", dsn=2896, payload=1448, from_sf=1, to_sf=0,
            cause="rto",
        ),
        ecf_decision(t=0.8),
        events.MinRttDecision(
            t=0.9, sched_uid=2, chosen_sf=0, available=((0, 0.01), (1, 0.1)),
        ),
    ]


def ecf_decision(t=0.0, decision="fast", **kw):
    """A decision whose logged inputs mandate waiting (Algorithm 1 holds).

    Defaults: ineq1 is 2 * 0.01 < 0.1; ineq2 is ceil(4/2) * 0.1 >= 0.0225.
    Override fields to break either inequality.
    """
    base = dict(
        t=t, sched_uid=1, decision=decision, fastest_uid=3, fastest_sf=0,
        second_uid=4, second_sf=1, k_segments=4.0, cwnd_f=2.0, cwnd_s=2.0,
        rtt_f=0.01, rtt_s=0.1, delta=0.0025, beta=0.25,
        use_second_inequality=True, waiting_before=False, waiting_after=False,
        n_rounds=2.0, threshold=0.1,
    )
    base.update(kw)
    return events.EcfDecision(**base)


class TestEventRoundTrip:
    def test_registry_covers_every_concrete_kind(self):
        assert set(events.EVENT_TYPES.values()) == set(Event_subclasses())
        assert {type(e) for e in sample_events()} == set(events.EVENT_TYPES.values())

    def test_every_kind_survives_json(self):
        for sample in sample_events():
            wire = json.loads(json.dumps(sample.to_dict()))
            again = events.event_from_dict(wire)
            assert again == sample
            assert type(again) is type(sample)

    def test_minrtt_available_refrozen_to_tuples(self):
        sample = events.MinRttDecision(
            t=0.9, sched_uid=2, chosen_sf=None, available=((0, 0.01),),
        )
        again = events.event_from_dict(json.loads(json.dumps(sample.to_dict())))
        assert again.available == ((0, 0.01),)
        assert isinstance(again.available, tuple)
        assert isinstance(again.available[0], tuple)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="WarpDrive"):
            events.event_from_dict({"kind": "WarpDrive", "t": 0.0})


def Event_subclasses():
    out = []
    stack = list(events.Event.__subclasses__())
    while stack:
        cls = stack.pop()
        stack.extend(cls.__subclasses__())
        out.append(cls)
    return out


class TestEventLogBounding:
    def test_capacity_drops_oldest(self):
        log = events.EventLog(capacity=3)
        for seq in range(5):
            log.emit(events.Dispatch(t=float(seq), seq=seq))
        assert len(log) == 3
        assert log.dropped == 2
        assert [e.seq for e in log.events()] == [2, 3, 4]

    def test_tail(self):
        log = events.EventLog()
        for seq in range(4):
            log.emit(events.Dispatch(t=float(seq), seq=seq))
        assert [e.seq for e in log.tail(2)] == [2, 3]
        assert [e.seq for e in log.tail(99)] == [0, 1, 2, 3]
        assert log.tail(0) == []

    def test_uids_never_alias_across_sequential_connections(self):
        # Two back-to-back runs in one process: the second connection's
        # subflows must not reuse the first's uids, or merged logs would
        # attribute one subflow's events to another.
        with events.recording() as first:
            run_bulk(bulk_spec(seed=1, size=48_000))
        with events.recording() as second:
            run_bulk(bulk_spec(seed=1, size=48_000))
        uids_a = {e.sf_uid for e in first.of_kind(events.SegmentSent)}
        uids_b = {e.sf_uid for e in second.of_kind(events.SegmentSent)}
        assert uids_a and uids_b
        assert uids_a.isdisjoint(uids_b)


class TestFlightRecorder:
    def test_window_installs_and_restores(self):
        assert flight.COLLECTOR is None
        with flight.flight(capacity=64) as recorder:
            assert flight.COLLECTOR is recorder
            assert events.LOG is recorder.log
            assert recorder.log.capacity == 64
            with flight.flight(capacity=8) as inner:
                assert flight.COLLECTOR is inner
            assert flight.COLLECTOR is recorder
        assert flight.COLLECTOR is None
        assert events.LOG is None

    def test_validation(self):
        with pytest.raises(ValueError):
            flight.FlightRecorder(capacity=0)
        with pytest.raises(ValueError):
            flight.FlightRecorder(trace_tail=0)

    def test_adopts_run_objects(self):
        with flight.flight() as recorder:
            run_bulk(bulk_spec())
            adopted = recorder.counters().to_dict()
            assert recorder.sim_now() > 0.0
            assert len(recorder.log) > 0
        assert adopted["events_dispatched"] > 0

    def test_postmortem_bundle_contents(self, tmp_path):
        spec = bulk_spec()
        key = spec_hash(spec)
        with flight.flight(capacity=128) as recorder:
            run_bulk(spec)
            bundle = recorder.write_postmortem(
                kind="bulk",
                spec=spec_to_dict(spec),
                spec_hash=key,
                seed=spec.seed,
                rev="testrev",
                error=RuntimeError("boom"),
                root=tmp_path,
            )
        assert bundle == flight.postmortem_dir_for(key, root=tmp_path)
        loaded = timeline.load_bundle(bundle)
        manifest = loaded["manifest"]
        assert manifest["schema_version"] == flight.BUNDLE_SCHEMA_VERSION
        assert manifest["spec_hash"] == key
        assert manifest["rev"] == "testrev"
        assert manifest["error"] == {"type": "RuntimeError", "message": "boom"}
        assert manifest["sim_now"] > 0.0
        assert manifest["events"] == len(loaded["events"]) <= 128
        assert loaded["events"]  # typed records rebuilt from events.jsonl
        assert all(isinstance(e, events.Event) for e in loaded["events"])

    def test_postmortem_prefers_error_event_log(self, tmp_path):
        # run_with_checks attaches its own (uncapped) log to escaping
        # errors; the bundle must carry that, not the shadowed ring.
        full = events.EventLog()
        full.emit(events.Dispatch(t=1.0, seq=42))
        error = RuntimeError("boom")
        error.event_log = full
        with flight.flight(capacity=8) as recorder:
            bundle = recorder.write_postmortem(
                kind="bulk", spec={}, spec_hash="cafe" * 10, error=error,
                root=tmp_path,
            )
        loaded = timeline.load_bundle(bundle)
        assert [e.seq for e in loaded["events"]] == [42]


class TestExecutorObservability:
    def test_failed_run_writes_bundle_and_journal(self, tmp_path, monkeypatch):
        obs_root = tmp_path / "obs"
        monkeypatch.setenv(flight.ENV_VAR, "1")
        monkeypatch.setenv(flight.DIR_ENV_VAR, str(obs_root))
        monkeypatch.setenv(check.ENV_VAR, "1")
        spec = StreamingSpec(
            scheduler="ecf-nowait", wifi_mbps=8.6, lte_mbps=8.6,
            video_duration=10.0,
        )
        executor = ExperimentExecutor(jobs=1)
        with pytest.raises(check.CheckError):
            executor.run([spec])
        assert executor.stats.failed == 1

        bundle = flight.postmortem_dir_for(spec_hash(spec))
        assert (bundle / "manifest.json").exists()
        manifest = json.loads((bundle / "manifest.json").read_text())
        assert manifest["kind"] == "streaming"
        assert manifest["error"]["type"] == "CheckError"

        records = read_journal(obs_root / "journal.jsonl")
        folded = summarize(records)
        assert folded["statuses"] == {"failed": 1}
        assert folded["failures"][0]["spec_hash"] == spec_hash(spec)
        assert folded["failures"][0]["postmortem"] == str(bundle)

        # Acceptance: the bundle exports to a valid Perfetto document with
        # per-subflow tracks and (mandated) ECF wait intervals.
        loaded = timeline.load_bundle(bundle)
        document = timeline.timeline_document(loaded["events"], loaded["traces"])
        problems = timeline.validate_trace_events(
            document, min_subflow_tracks=2, require_ecf_waits=True
        )
        assert problems == []

    def test_successful_batch_journals_executed(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        executor = ExperimentExecutor(jobs=1, journal=journal_path)
        executor.run([bulk_spec(size=48_000)])
        records = read_journal(journal_path)
        kinds = [r["record"] for r in records]
        assert kinds == ["batch_start", "job", "batch_end"]
        job = records[1]
        assert job["status"] == "executed"
        assert job["attempts"] == 1
        assert job["wall_s"] >= 0.0
        assert records[2]["failed"] == 0

    def test_cached_jobs_journal_as_cached(self, tmp_path):
        spec = bulk_spec(size=48_000)
        ExperimentExecutor(jobs=1, cache_dir=tmp_path / "cache").run([spec])
        journal_path = tmp_path / "journal.jsonl"
        executor = ExperimentExecutor(
            jobs=1, cache_dir=tmp_path / "cache", journal=journal_path
        )
        executor.run([spec])
        folded = summarize(read_journal(journal_path))
        assert folded["statuses"] == {"cached": 1}


class TestJournal:
    def test_records_are_stamped_and_ordered(self, tmp_path):
        journal = RunJournal(tmp_path / "deep" / "journal.jsonl")
        journal.batch_start(total=2)
        journal.job(spec_hash="abc", status="executed")
        journal.retry(spec_hash="abc", attempt=1, error="timeout")
        journal.batch_end(done=2)
        records = read_journal(journal.path)
        assert [r["record"] for r in records] == [
            "batch_start", "job", "retry", "batch_end",
        ]
        assert [r["seq"] for r in records] == [1, 2, 3, 4]
        assert all("wall" in r for r in records)

    def test_read_skips_blank_lines(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"record": "job"}\n\n{"record": "batch_end"}\n')
        assert len(read_journal(path)) == 2

    def test_read_rejects_non_object_lines(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(ValueError, match="not an object"):
            read_journal(path)

    def test_summarize(self):
        folded = summarize([
            {"record": "job", "status": "cached"},
            {"record": "job", "status": "failed", "spec_hash": "ff",
             "error": {"type": "X"}, "postmortem": "/p"},
            {"record": "retry"},
            {"record": "retry"},
            {"record": "batch_end"},
        ])
        assert folded["statuses"] == {"cached": 1, "failed": 1}
        assert folded["retries"] == 2
        assert folded["failures"] == [
            {"spec_hash": "ff", "error": {"type": "X"}, "postmortem": "/p"},
        ]

    def test_summarize_skips_unknown_record_kinds(self):
        # Forward compatibility: a newer writer may add record types this
        # reader does not know; they are skipped (and counted), not fatal.
        with pytest.warns(FutureWarning, match="hologram"):
            folded = summarize([
                {"record": "job", "status": "executed"},
                {"record": "hologram", "volume": 11},
                {"record": "hologram", "volume": 12},
                {"record": "batch_end"},
            ])
        assert folded["statuses"] == {"executed": 1}
        assert folded["skipped"] == 2

    def test_summarize_known_records_do_not_warn(self, recwarn):
        folded = summarize([
            {"record": "batch_start", "total": 1},
            {"record": "job", "status": "executed"},
            {"record": "batch_end"},
        ])
        assert folded["skipped"] == 0
        assert not [w for w in recwarn.list
                    if issubclass(w.category, FutureWarning)]


class TestJournalRotation:
    def entry(self, i):
        return {"spec_hash": f"h{i:05d}", "status": "executed",
                "padding": "x" * 64}

    def test_size_rotation_keeps_tail(self, tmp_path):
        journal = RunJournal(
            tmp_path / "journal.jsonl", max_bytes=4096, retain_tail=10,
        )
        for i in range(200):
            journal.job(**self.entry(i))
        assert journal.rotated_path.exists()
        active = read_journal(journal.path)
        # The active file never exceeds the bound by more than one
        # record's worth, and always retains the most recent tail.
        assert len(active) >= 10
        assert active[-1]["spec_hash"] == "h00199"
        rotated = read_journal(journal.rotated_path)
        assert rotated  # older records moved aside, not lost

    def test_tail_overlap_is_contiguous(self, tmp_path):
        journal = RunJournal(
            tmp_path / "journal.jsonl", max_bytes=2048, retain_tail=5,
        )
        for i in range(100):
            journal.job(**self.entry(i))
        active = read_journal(journal.path)
        seqs = [r["seq"] for r in active]
        assert seqs == sorted(seqs)
        assert seqs == list(range(seqs[0], seqs[0] + len(seqs)))

    def test_no_bounds_means_no_rotation(self, tmp_path):
        journal = RunJournal(tmp_path / "journal.jsonl")
        for i in range(50):
            journal.job(**self.entry(i))
        assert not journal.rotated_path.exists()
        assert len(read_journal(journal.path)) == 50

    def test_summarize_of_rotated_journal_still_works(self, tmp_path):
        journal = RunJournal(
            tmp_path / "journal.jsonl", max_bytes=2048, retain_tail=5,
        )
        journal.batch_start(total=100)
        for i in range(100):
            journal.job(**self.entry(i))
        journal.batch_end(done=100)
        folded = summarize(read_journal(journal.path))
        assert folded["statuses"]["executed"] >= 5

    def test_observer_sees_every_record_despite_rotation(self, tmp_path):
        seen = []
        journal = RunJournal(
            tmp_path / "journal.jsonl", max_bytes=2048, retain_tail=5,
            observer=seen.append,
        )
        for i in range(100):
            journal.job(**self.entry(i))
        assert len(seen) == 100


class TestMandatedWaitReplay:
    def test_defaults_mandate_waiting(self):
        assert timeline._mandated_wait(ecf_decision()) is True

    def test_nonfinite_fast_rtt_never_waits(self):
        assert timeline._mandated_wait(
            ecf_decision(rtt_f=float("inf"))) is False

    def test_nonfinite_slow_rtt_always_waits(self):
        assert timeline._mandated_wait(
            ecf_decision(rtt_s=float("inf"))) is True

    def test_first_inequality_failing_sends(self):
        # n * rtt_f >= threshold: the fast path is no longer worth it.
        assert timeline._mandated_wait(
            ecf_decision(n_rounds=20.0)) is False

    def test_second_inequality_skipped_when_disabled(self):
        assert timeline._mandated_wait(
            ecf_decision(use_second_inequality=False, rtt_s=1e-6)) is True

    def test_second_inequality_failing_sends(self):
        # Slow path finishes well inside 2 * rtt_f + delta: use it.
        assert timeline._mandated_wait(
            ecf_decision(rtt_s=0.001, k_segments=1.0)) is False


class TestTimelineDocument:
    def synthetic_log(self):
        return [
            events.SegmentSent(
                t=0.01, sf_uid=3, sf_id=0, seq=1, dsn=0, payload=1448,
                retransmitted=False, cwnd=10.0, in_flight=1,
            ),
            events.SegmentSent(
                t=0.02, sf_uid=4, sf_id=1, seq=1, dsn=1448, payload=1448,
                retransmitted=False, cwnd=4.0, in_flight=1,
            ),
            events.FastRetransmit(
                t=0.03, sf_uid=3, sf_id=0, seq=1, recovery_point=5,
            ),
            events.AckProcessed(
                t=0.05, sf_uid=3, sf_id=0, seq=5, rtt_sampled=True,
                cwnd=5.0, in_recovery=False, backoff=1.0,
            ),
            ecf_decision(t=0.06, decision="wait"),
            ecf_decision(t=0.08, decision="fast", n_rounds=20.0),
            events.Delivered(t=0.09, recv_uid=7, dsn=0, payload=1448, delay=0.01),
        ]

    def test_tracks_spans_and_counters(self):
        document = timeline.timeline_document(
            self.synthetic_log(), traces={"cwnd.wifi0": [[0.0, 10.0], [0.1, 12.0]]}
        )
        assert document["displayTimeUnit"] == "ms"
        trace_events = document["traceEvents"]
        thread_names = {
            e["args"]["name"] for e in trace_events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "subflow 0 (uid 3)" in thread_names
        assert "subflow 1 (uid 4)" in thread_names
        assert "ecf scheduler (uid 1)" in thread_names

        spans = [e for e in trace_events if e["ph"] == "X"]
        names = {e["name"] for e in spans}
        assert "recovery (fast rtx)" in names
        assert "ecf wait" in names  # the wait actually taken, 0.06 -> 0.08
        taken = next(e for e in spans if e["name"] == "ecf wait")
        assert taken["ts"] == 60_000 and taken["dur"] == 20_000

        counters = [e for e in trace_events if e["ph"] == "C"]
        assert any(e["name"] == "cwnd.wifi0" for e in counters)
        assert any(e["name"] == "cwnd sf0" for e in counters)

        assert timeline.validate_trace_events(
            document, min_subflow_tracks=2, require_ecf_waits=True
        ) == []

    def test_mandated_spans_survive_a_never_waiting_log(self):
        # ecf-nowait's signature: no "wait" decisions at all, yet the
        # replay still charts where Algorithm 1 demanded one.
        log = [ecf_decision(t=0.01, decision="slow"),
               ecf_decision(t=0.02, decision="slow", n_rounds=20.0)]
        document = timeline.timeline_document(log)
        spans = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert [e["name"] for e in spans] == ["ecf wait (mandated)"]
        assert spans[0]["args"]["taken"] == "slow"

    def test_nonfinite_args_sanitized(self, tmp_path):
        log = [ecf_decision(t=0.01, decision="fast", threshold=float("inf"))]
        document = timeline.timeline_document(log)
        instant = next(
            e for e in document["traceEvents"] if e["ph"] == "i"
        )
        assert instant["args"]["threshold"] is None
        # Must serialize under allow_nan=False.
        timeline.write_timeline(document, tmp_path / "deep" / "trace.json")
        assert (tmp_path / "deep" / "trace.json").exists()

    def test_empty_log_is_valid(self):
        document = timeline.timeline_document([])
        assert timeline.validate_trace_events(document) == []


class TestValidator:
    def test_rejects_non_document(self):
        assert timeline.validate_trace_events([1, 2]) != []
        assert timeline.validate_trace_events({"nope": 1}) != []

    def test_flags_structural_problems(self):
        document = {"traceEvents": [
            {"ph": "Z", "name": "bad", "ts": 0, "pid": 1, "tid": 1},
            {"ph": "X", "name": "no dur", "ts": 0, "pid": 1, "tid": 1},
            {"ph": "C", "name": "bad counter", "ts": 0, "pid": 1, "tid": 0,
             "args": {"value": float("inf")}},
            {"ph": "i", "name": "no ids", "ts": 0},
        ]}
        problems = timeline.validate_trace_events(document)
        assert any("unknown phase" in p for p in problems)
        assert any("'dur'" in p for p in problems)
        assert any("finite numeric args" in p for p in problems)
        assert any("pid" in p for p in problems)

    def test_track_and_wait_requirements(self):
        document = timeline.timeline_document([])
        assert timeline.validate_trace_events(
            document, min_subflow_tracks=2
        ) == ["expected >= 2 subflow tracks, found 0"]
        assert timeline.validate_trace_events(
            document, require_ecf_waits=True
        ) == ["no 'ecf wait' duration events found"]


class TestFlatExports:
    def test_jsonl_round_trips(self, tmp_path):
        samples = sample_events()
        path = tmp_path / "events.jsonl"
        path.write_text(timeline.to_jsonl(samples))
        assert timeline.load_events_jsonl(path) == samples

    def test_jsonl_empty(self):
        assert timeline.to_jsonl([]) == ""

    def test_prometheus_text(self):
        text = timeline.prometheus_text(
            {"b_counter": 2.5, "a_counter": 7, "skip_inf": float("inf"),
             "skip_flag": True, "skip_str": "x", "skip_neg": -1},
        )
        lines = text.splitlines()
        assert "# TYPE repro_a_counter counter" in lines
        assert "repro_a_counter_total 7" in lines
        assert "repro_b_counter_total 2.5" in lines
        assert lines[-1] == "# EOF"
        assert not any("skip" in line for line in lines)
        # Counters come out in sorted family order.
        assert lines.index("repro_a_counter_total 7") < lines.index(
            "repro_b_counter_total 2.5"
        )

    def test_prometheus_text_is_valid_openmetrics(self):
        from repro.obs.metrics import validate_openmetrics

        text = timeline.prometheus_text({"events": 100, "wall_s": 0.25})
        assert validate_openmetrics(text) == []

    def test_prometheus_prefix(self):
        text = timeline.prometheus_text({"n": 1}, prefix="x_")
        assert "# TYPE x_n counter" in text.splitlines()
        assert "x_n_total 1" in text.splitlines()

    def test_prometheus_empty_still_terminated(self):
        assert timeline.prometheus_text({}).splitlines()[-1] == "# EOF"


class TestLoadExportSource:
    def test_jsonl_source(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(timeline.to_jsonl(sample_events()))
        loaded = timeline.load_export_source(path)
        assert loaded["events"] == sample_events()
        assert loaded["traces"] == {}

    def test_result_json_source(self, tmp_path):
        path = tmp_path / "result.json"
        path.write_text(json.dumps(
            {"kind": "streaming", "trace": {"cwnd.wifi0": [[0.0, 1.0]]}}
        ))
        loaded = timeline.load_export_source(path)
        assert loaded["traces"] == {"cwnd.wifi0": [[0.0, 1.0]]}

    def test_result_array_takes_first(self, tmp_path):
        path = tmp_path / "results.json"
        path.write_text(json.dumps([
            {"trace": {"a": [[0.0, 1.0]]}}, {"trace": {"b": []}},
        ]))
        assert timeline.load_export_source(path)["traces"] == {"a": [[0.0, 1.0]]}

    def test_cache_entry_unwraps_result(self, tmp_path):
        path = tmp_path / "entry.json"
        path.write_text(json.dumps({
            "schema_version": 1, "kind": "streaming",
            "result": {"trace": {"c": [[0.0, 2.0]]}, "perf": {"n": 1}},
        }))
        loaded = timeline.load_export_source(path)
        assert loaded["traces"] == {"c": [[0.0, 2.0]]}
        assert loaded["perf"] == {"n": 1}

    def test_non_bundle_directory_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="not a postmortem bundle"):
            timeline.load_export_source(tmp_path)

    def test_empty_array_rejected(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("[]")
        with pytest.raises(ValueError, match="empty"):
            timeline.load_export_source(path)


class TestTraceCli:
    def make_bundle(self, tmp_path):
        # roundrobin and a transfer outliving the join handshake guarantee
        # both subflows carry traffic, so the export has two subflow tracks.
        spec = bulk_spec(scheduler="roundrobin", size=200_000)
        with flight.flight() as recorder:
            run_bulk(spec)
            return recorder.write_postmortem(
                kind="bulk", spec=spec_to_dict(spec), spec_hash=spec_hash(spec),
                error=RuntimeError("boom"), root=tmp_path,
            )

    def test_export_and_validate(self, tmp_path, capsys):
        bundle = self.make_bundle(tmp_path)
        out = tmp_path / "nested" / "trace.json"
        assert cli_main(["trace", "export", str(bundle), "-o", str(out)]) in (0, None)
        document = json.loads(out.read_text())
        assert timeline.validate_trace_events(document, min_subflow_tracks=2) == []
        capsys.readouterr()
        rc = cli_main(["trace", "validate", str(out), "--min-subflow-tracks", "2"])
        assert rc in (0, None)
        assert "valid trace-event document" in capsys.readouterr().out

    def test_validate_fails_on_unmet_requirements(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"traceEvents": []}))
        rc = cli_main([
            "trace", "validate", str(path), "--require-ecf-waits",
        ])
        assert rc == 1
        assert "ecf wait" in capsys.readouterr().out

    def test_export_prom_to_stdout(self, tmp_path, capsys):
        bundle = self.make_bundle(tmp_path)
        capsys.readouterr()
        assert cli_main([
            "trace", "export", str(bundle), "--format", "prom",
        ]) in (0, None)
        assert "# TYPE repro_events_dispatched counter" in capsys.readouterr().out
