"""Tests for the campaign daemon (repro.service.daemon) and the
executor -> store -> registry telemetry plumbing it rides on."""

import json
import urllib.request

import pytest

from repro.apps.bulk import BulkDownloadSpec
from repro.net.profiles import lte_config, wifi_config
from repro.obs.metrics import (
    default_registry,
    publish_perf_counters,
    validate_openmetrics,
)
from repro.service import (
    CampaignRunner,
    CampaignStore,
    InlineBackendConfig,
    PoolBackendConfig,
)
from repro.service.daemon import (
    CampaignDaemon,
    fetch_metrics,
    fetch_status,
    render_watch_line,
    status_document,
)


def bulk_specs(n=3, size=48 * 1024):
    return [
        BulkDownloadSpec(
            scheduler="ecf",
            path_configs=(wifi_config(2.0), lte_config(float(2 + i))),
            size=size,
            seed=i,
        )
        for i in range(n)
    ]


class TestStatusDocument:
    def test_unknown_campaign_raises(self, tmp_path):
        with CampaignStore(tmp_path / "c.db") as store:
            with pytest.raises(KeyError):
                status_document(store, "nope")

    def test_counts_and_shape(self, tmp_path):
        with CampaignStore(tmp_path / "c.db") as store:
            runner = CampaignRunner(
                store, "doc", cache_dir=tmp_path / "cache",
                journal=tmp_path / "j.jsonl",
            )
            runner.submit(bulk_specs(2))
            doc = status_document(store, "doc")
            assert doc["campaign"] == "doc"
            assert doc["total"] == 2
            assert doc["remaining"] == 2
            assert doc["counts"]["pending"] == 2
            assert doc["done_fraction"] == 0.0
            runner.drain()
            doc = status_document(store, "doc")
            assert doc["counts"]["done"] == 2
            assert doc["remaining"] == 0
            assert doc["done_fraction"] == 1.0
            assert doc["journal_jobs"] == {"executed": 2}
            assert doc["cache_hit_rate"] == 0.0

    def test_cache_hits_reflected(self, tmp_path):
        specs = bulk_specs(2)
        with CampaignStore(tmp_path / "c.db") as store:
            runner = CampaignRunner(
                store, "doc", cache_dir=tmp_path / "cache",
                journal=tmp_path / "j.jsonl",
            )
            runner.submit(specs)
            runner.drain()
        # A fresh campaign over the same cache resolves every job as a
        # cache hit and journals it as "cached".
        with CampaignStore(tmp_path / "c.db") as store:
            fresh = CampaignRunner(
                store, "doc2", cache_dir=tmp_path / "cache",
                journal=tmp_path / "j2.jsonl",
            )
            fresh.submit(specs)
            fresh.drain()
            doc = status_document(store, "doc2")
            assert doc["journal_jobs"] == {"cached": 2}
            assert doc["cache_hit_rate"] == 1.0

    def test_matches_cli_status_json(self, tmp_path):
        from repro import cli

        db = tmp_path / "c.db"
        with CampaignStore(db) as store:
            runner = CampaignRunner(
                store, "cli-doc", cache_dir=tmp_path / "cache",
                journal=tmp_path / "j.jsonl",
            )
            runner.submit(bulk_specs(1))
            runner.drain()
        rc = cli.main(["campaign", "status", "cli-doc", "--db", str(db),
                       "--json"])
        assert rc == 0


class TestWatchLine:
    def test_render(self):
        doc = {
            "campaign": "grid",
            "counts": {"pending": 3, "running": 1, "done": 5, "failed": 0},
            "cache_hit_rate": 0.4,
            "events_per_s": 95000.0,
            "eta_s": 12.0,
            "remaining": 4,
        }
        line = render_watch_line(doc)
        assert "[grid]" in line
        assert "pending=3" in line
        assert "done=5" in line
        assert "cache-hits=40%" in line
        assert "events=95k/s" in line
        assert "eta=12s" in line

    def test_render_tolerates_missing_fields(self):
        line = render_watch_line({})
        assert "pending=0" in line
        assert "events=-" in line


class TestDaemonServe:
    def build(self, tmp_path, name="serve", n=3, **kwargs):
        store = CampaignStore(tmp_path / "c.db")
        runner = CampaignRunner(
            store, name, cache_dir=tmp_path / "cache",
            journal=tmp_path / "seed.jsonl",
        )
        runner.submit(bulk_specs(n))
        daemon = CampaignDaemon(
            store, name, cache_dir=str(tmp_path / "cache"),
            journal=str(tmp_path / "daemon.jsonl"),
            poll_interval_s=0.05, **kwargs,
        )
        return store, daemon

    def test_serve_drains_and_gauges_match_ground_truth(self, tmp_path):
        store, daemon = self.build(tmp_path)
        try:
            daemon.start_http()
            doc = daemon.serve(max_loops=2)
            assert doc["counts"] == {
                "pending": 0, "running": 0, "done": 3, "failed": 0,
            }
            truth = store.counts(daemon.runner.campaign_id)
            scrape = fetch_metrics(daemon.endpoint)
            assert validate_openmetrics(scrape) == []
            for status, count in truth.items():
                needle = (
                    f'repro_campaign_jobs{{campaign="serve",'
                    f'status="{status}"}} {count}'
                )
                assert needle in scrape.splitlines(), needle
        finally:
            daemon.shutdown()

    def test_status_endpoint_serves_the_document(self, tmp_path):
        store, daemon = self.build(tmp_path, name="statusd", n=1)
        try:
            daemon.start_http()
            daemon.serve(max_loops=1)
            doc = fetch_status(daemon.endpoint)
            assert doc["campaign"] == "statusd"
            assert doc["counts"]["done"] == 1
            truth = status_document(store, "statusd")
            assert doc["counts"] == truth["counts"]
        finally:
            daemon.shutdown()

    def test_healthz_and_404(self, tmp_path):
        store, daemon = self.build(tmp_path, name="health", n=1)
        try:
            daemon.start_http()
            body = urllib.request.urlopen(
                daemon.endpoint + "/healthz", timeout=5
            ).read()
            assert body == b"ok\n"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    daemon.endpoint + "/does-not-exist", timeout=5
                )
            assert excinfo.value.code == 404
        finally:
            daemon.shutdown()

    def test_kill_and_resume_reaches_ground_truth(self, tmp_path):
        # First daemon "dies" after a partial drain (simulated by a
        # limited drain through its runner, then shutdown without
        # finishing); a second daemon resumes and finishes.
        store, first = self.build(tmp_path, name="resume", n=3)
        try:
            first.runner.drain(limit=1)
        finally:
            first.shutdown()
        counts = store.counts(first.runner.campaign_id)
        assert counts["done"] == 1
        assert counts["pending"] == 2

        second = CampaignDaemon(
            store, "resume", cache_dir=str(tmp_path / "cache"),
            journal=str(tmp_path / "daemon2.jsonl"), poll_interval_s=0.05,
        )
        try:
            second.start_http()
            doc = second.serve(max_loops=2)
            assert doc["counts"]["done"] == 3
            scrape = fetch_metrics(second.endpoint)
            assert validate_openmetrics(scrape) == []
            assert (
                'repro_campaign_jobs{campaign="resume",status="done"} 3'
                in scrape.splitlines()
            )
            assert (
                'repro_campaign_jobs{campaign="resume",status="pending"} 0'
                in scrape.splitlines()
            )
        finally:
            second.shutdown()

    def test_serve_counts_loops_and_scrapes(self, tmp_path):
        store, daemon = self.build(tmp_path, name="loops", n=1)
        try:
            daemon.start_http()
            daemon.serve(max_loops=2)
            fetch_metrics(daemon.endpoint)
            scrape = fetch_metrics(daemon.endpoint)
            lines = scrape.splitlines()
            assert 'repro_serve_loops_total{campaign="loops"} 2' in lines
            # The second scrape sees the first one counted.
            assert any(
                line.startswith("repro_serve_scrapes_total ")
                and float(line.split(" ")[1]) >= 1
                for line in lines
            )
        finally:
            daemon.shutdown()

    def test_journal_rotation_bounds_daemon_journal(self, tmp_path):
        store, daemon = self.build(
            tmp_path, name="rotate", n=2,
            journal_max_bytes=512, journal_retain_tail=4,
        )
        try:
            daemon.serve(max_loops=1)
        finally:
            daemon.shutdown()
        journal_path = tmp_path / "daemon.jsonl"
        assert journal_path.stat().st_size <= 4096

    def test_transitions_counted(self, tmp_path):
        store, daemon = self.build(tmp_path, name="edges", n=2)
        try:
            daemon.serve(max_loops=1)
            rendered = daemon.registry.get(
                "repro_campaign_transitions"
            )
            assert rendered.value(
                campaign="edges", from_status="pending", to_status="running"
            ) == 2
            assert rendered.value(
                campaign="edges", from_status="running", to_status="done"
            ) == 2
        finally:
            daemon.shutdown()

    def test_shutdown_unhooks_store(self, tmp_path):
        store, daemon = self.build(tmp_path, name="unhook", n=1)
        assert store.on_transition is not None
        daemon.shutdown()
        assert store.on_transition is None


class TestPerfAcrossPoolBackend:
    """Satellite: worker perf counters survive the process-pool wire
    format and sum correctly in the registry."""

    def drain_with_backend(self, tmp_path, backend, name, monkeypatch):
        from repro.perf import counters as perf_counters

        monkeypatch.setenv(perf_counters.ENV_VAR, "1")
        outcomes = []
        with CampaignStore(tmp_path / f"{name}.db") as store:
            runner = CampaignRunner(
                store, name, backend=backend,
                cache_dir=tmp_path / f"{name}-cache",
                journal=tmp_path / f"{name}.jsonl",
                on_outcome=outcomes.append,
            )
            runner.submit(bulk_specs(3))
            counts = runner.drain()
        assert counts["done"] == 3
        return outcomes

    def test_pool_outcomes_carry_perf_records(self, tmp_path, monkeypatch):
        outcomes = self.drain_with_backend(
            tmp_path, PoolBackendConfig(jobs=2), "pool", monkeypatch
        )
        executed = [o for o in outcomes if o.status == "executed"]
        assert len(executed) == 3
        for outcome in executed:
            assert isinstance(outcome.perf, dict)
            assert outcome.perf["counters"]["events_dispatched"] > 0
            assert outcome.perf["wall_s"] > 0

    def test_pool_counters_sum_in_registry_like_inline(
        self, tmp_path, monkeypatch
    ):
        pool = self.drain_with_backend(
            tmp_path, PoolBackendConfig(jobs=2), "pool-sum", monkeypatch
        )
        inline = self.drain_with_backend(
            tmp_path, InlineBackendConfig(), "inline-sum", monkeypatch
        )

        def registry_total(outcomes, campaign):
            registry = default_registry()
            for outcome in outcomes:
                if outcome.perf:
                    publish_perf_counters(
                        registry, outcome.perf, campaign=campaign
                    )
            return registry.get("repro_perf_events_dispatched").value(
                campaign=campaign
            )

        pool_total = registry_total(pool, "pool-sum")
        inline_total = registry_total(inline, "inline-sum")
        # Identical specs simulate identical event counts whichever side
        # of the pool boundary the counters were collected on.
        assert pool_total == inline_total
        assert pool_total == sum(
            o.perf["counters"]["events_dispatched"] for o in pool if o.perf
        )

    def test_cache_hits_have_no_perf_record(self, tmp_path, monkeypatch):
        from repro.perf import counters as perf_counters

        monkeypatch.setenv(perf_counters.ENV_VAR, "1")
        specs = bulk_specs(2)
        with CampaignStore(tmp_path / "c.db") as store:
            first = CampaignRunner(
                store, "warm", cache_dir=tmp_path / "cache",
            )
            first.submit(specs)
            first.drain()
            outcomes = []
            second = CampaignRunner(
                store, "hits", cache_dir=tmp_path / "cache",
                on_outcome=outcomes.append,
            )
            second.submit(specs)
            second.drain()
        assert [o.status for o in outcomes] == ["cached", "cached"]
        assert all(o.perf is None for o in outcomes)


class TestDaemonEventsRate:
    def test_events_per_second_gauge_set(self, tmp_path, monkeypatch):
        from repro.perf import counters as perf_counters

        monkeypatch.setenv(perf_counters.ENV_VAR, "1")
        store = CampaignStore(tmp_path / "c.db")
        CampaignRunner(
            store, "rate", cache_dir=tmp_path / "cache",
        ).submit(bulk_specs(2))
        daemon = CampaignDaemon(
            store, "rate", cache_dir=str(tmp_path / "cache"),
            journal=str(tmp_path / "j.jsonl"), poll_interval_s=0.05,
        )
        try:
            doc = daemon.serve(max_loops=1)
            assert doc["counts"]["done"] == 2
            gauge = daemon.registry.get("repro_serve_events_per_second")
            assert gauge.value(campaign="rate") > 0
            assert doc["events_per_s"] and doc["events_per_s"] > 0
        finally:
            daemon.shutdown()


class TestMetricsValidateCli:
    def test_validate_accepts_daemon_scrape(self, tmp_path, capsys):
        from repro import cli

        store = CampaignStore(tmp_path / "c.db")
        CampaignRunner(
            store, "v", cache_dir=tmp_path / "cache",
        ).submit(bulk_specs(1))
        daemon = CampaignDaemon(
            store, "v", cache_dir=str(tmp_path / "cache"),
            journal=str(tmp_path / "j.jsonl"), poll_interval_s=0.05,
        )
        try:
            daemon.start_http()
            daemon.serve(max_loops=1)
            scrape_path = tmp_path / "scrape.txt"
            scrape_path.write_text(fetch_metrics(daemon.endpoint))
        finally:
            daemon.shutdown()
        assert cli.main(["metrics", "validate", str(scrape_path)]) == 0
        out = capsys.readouterr().out
        assert "valid OpenMetrics exposition" in out

    def test_validate_rejects_truncated_scrape(self, tmp_path, capsys):
        from repro import cli

        bad = tmp_path / "bad.txt"
        bad.write_text("# TYPE x counter\nx_total 1\n")  # no EOF
        assert cli.main(["metrics", "validate", str(bad)]) == 1
