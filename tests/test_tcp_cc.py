"""Tests for the congestion controllers."""

import pytest

from repro.tcp.cc import CoupledController, OliaController, RenoController, make_controller
from repro.tcp.cc.base import MIN_CWND
from tests.conftest import build_connection


def two_subflow_conn(sim, cc_name="reno"):
    conn = build_connection(sim, congestion_control=cc_name)
    return conn, conn.subflows


class TestFactory:
    def test_known_names(self):
        assert isinstance(make_controller("reno"), RenoController)
        assert isinstance(make_controller("coupled"), CoupledController)
        assert isinstance(make_controller("lia"), CoupledController)
        assert isinstance(make_controller("olia"), OliaController)

    def test_case_insensitive(self):
        assert isinstance(make_controller("RENO"), RenoController)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_controller("bbr")


class TestSlowStartAndDecrease:
    def test_slow_start_adds_one_per_ack(self, sim):
        conn, (sf, _) = two_subflow_conn(sim)
        sf.ssthresh = float("inf")
        before = sf.cwnd
        sf.cc.on_ack(sf, 1)
        assert sf.cwnd == pytest.approx(before + 1.0)

    def test_ca_increase_is_reciprocal_for_reno(self, sim):
        conn, (sf, _) = two_subflow_conn(sim)
        sf.cwnd = 20.0
        sf.ssthresh = 10.0
        sf.cc.on_ack(sf, 1)
        assert sf.cwnd == pytest.approx(20.0 + 1.0 / 20.0)

    def test_on_loss_halves_flight(self, sim):
        conn, (sf, _) = two_subflow_conn(sim)
        sf.cwnd = 40.0
        sf._in_flight = 40
        sf.cc.on_loss(sf)
        assert sf.ssthresh == pytest.approx(20.0)
        assert sf.cwnd == pytest.approx(20.0)

    def test_on_loss_floors_at_two(self, sim):
        conn, (sf, _) = two_subflow_conn(sim)
        sf.cwnd = 2.0
        sf._in_flight = 1
        sf.cc.on_loss(sf)
        assert sf.ssthresh == 2.0
        assert sf.cwnd >= MIN_CWND

    def test_on_rto_collapses_to_one(self, sim):
        conn, (sf, _) = two_subflow_conn(sim)
        sf.cwnd = 40.0
        sf._in_flight = 40
        sf.cc.on_rto(sf)
        assert sf.cwnd == MIN_CWND
        assert sf.ssthresh == pytest.approx(20.0)

    def test_cwnd_capped_at_max(self, sim):
        conn, (sf, _) = two_subflow_conn(sim)
        sf.max_cwnd = 15.0
        sf.cwnd = 14.5
        sf.ssthresh = float("inf")
        sf.cc.on_ack(sf, 2)
        assert sf.cwnd == 15.0


class TestCoupled:
    def test_single_path_alpha_reduces_to_reno(self, sim):
        conn = build_connection(sim, path_specs=((10.0, 0.01),), congestion_control="coupled")
        (sf,) = conn.subflows
        sf.cwnd = 20.0
        sf.rtt.add_sample(0.1)
        alpha = conn.cc.alpha()
        # With one path: alpha = w * (w/r^2) / (w/r)^2 = 1.
        assert alpha == pytest.approx(1.0)

    def test_coupled_increase_never_exceeds_reno(self, sim):
        conn, (sf1, sf2) = two_subflow_conn(sim, "coupled")
        sf1.cwnd, sf2.cwnd = 10.0, 50.0
        sf1.rtt.add_sample(0.02)
        sf2.rtt.add_sample(0.2)
        for sf in (sf1, sf2):
            assert conn.cc.ca_increase(sf) <= 1.0 / max(sf.cwnd, 1.0) + 1e-12

    def test_coupled_favors_better_path(self, sim):
        """Total increase shifts toward the lower-RTT subflow."""
        conn, (fast, slow) = two_subflow_conn(sim, "coupled")
        fast.cwnd = slow.cwnd = 20.0
        fast.rtt.add_sample(0.01)
        slow.rtt.add_sample(0.5)
        # alpha is dominated by the fast path's w/rtt^2 term.
        assert conn.cc.alpha() > 0.5

    def test_alpha_handles_zero_windows(self, sim):
        conn, (sf1, sf2) = two_subflow_conn(sim, "coupled")
        sf1.cwnd = sf2.cwnd = 0.0
        assert conn.cc.alpha() == 1.0


class TestOlia:
    def test_single_path_reduces_to_reno(self, sim):
        conn = build_connection(sim, path_specs=((10.0, 0.01),), congestion_control="olia")
        (sf,) = conn.subflows
        sf.cwnd = 25.0
        sf.rtt.add_sample(0.1)
        assert conn.cc.ca_increase(sf) == pytest.approx(1.0 / 25.0, rel=1e-6)

    def test_increase_bounded(self, sim):
        conn, (sf1, sf2) = two_subflow_conn(sim, "olia")
        sf1.cwnd, sf2.cwnd = 1.0, 100.0
        sf1.rtt.add_sample(0.001)
        sf2.rtt.add_sample(1.0)
        for sf in (sf1, sf2):
            inc = conn.cc.ca_increase(sf)
            assert -1.0 <= inc <= 1.0

    def test_collected_path_gets_positive_alpha(self, sim):
        conn, (good, big) = two_subflow_conn(sim, "olia")
        good.cwnd, big.cwnd = 5.0, 50.0
        good.rtt.add_sample(0.01)
        big.rtt.add_sample(0.5)
        good.stats.bytes_since_loss = 10_000_000
        big.stats.bytes_since_loss = 1_000
        assert conn.cc._alpha(good) > 0.0
        assert conn.cc._alpha(big) < 0.0

    def test_alpha_zero_when_best_equals_largest(self, sim):
        conn, (sf1, sf2) = two_subflow_conn(sim, "olia")
        sf1.cwnd, sf2.cwnd = 50.0, 10.0
        sf1.rtt.add_sample(0.01)
        sf2.rtt.add_sample(0.5)
        sf1.stats.bytes_since_loss = 10_000_000
        sf2.stats.bytes_since_loss = 1_000
        # Best path is also the largest-window path: no transfer term.
        assert conn.cc._alpha(sf1) == 0.0


class TestRegistration:
    def test_subflows_register_with_connection_controller(self, sim):
        conn, subflows = two_subflow_conn(sim)
        assert conn.cc.subflows == list(subflows)

    def test_double_registration_is_idempotent(self, sim):
        conn, (sf, _) = two_subflow_conn(sim)
        conn.cc.register(sf)
        assert conn.cc.subflows.count(sf) == 1
