"""Tests for the MP-DASH-style deadline-aware path manager."""

import pytest

from repro.apps.dash.media import PAPER_REPRESENTATIONS
from repro.apps.dash.mpdash import MpDashPathManager, MpDashScheduler
from repro.core.registry import make_scheduler
from repro.experiments.runner import StreamingRunConfig, run_streaming
from tests.conftest import build_connection


def warmed(sim):
    conn = build_connection(sim, scheduler_name="mpdash",
                            path_specs=((2.0, 0.01), (10.0, 0.05)))
    conn.subflows[0].rtt.add_sample(0.02)
    conn.subflows[1].rtt.add_sample(0.1)
    return conn


class TestScheduler:
    def test_registry_builds_mpdash(self):
        assert isinstance(make_scheduler("mpdash"), MpDashScheduler)

    def test_cellular_inactive_restricts_to_primary(self, sim):
        conn = warmed(sim)
        conn.scheduler.set_cellular(False)
        assert conn.scheduler.select(conn) is conn.subflows[0]
        conn.subflows[0]._in_flight = int(conn.subflows[0].cwnd)
        assert conn.scheduler.select(conn) is None

    def test_cellular_active_admits_secondary(self, sim):
        conn = warmed(sim)
        conn.scheduler.set_cellular(True)
        conn.subflows[0]._in_flight = int(conn.subflows[0].cwnd)
        assert conn.scheduler.select(conn) is conn.subflows[1]

    def test_activation_counters(self, sim):
        scheduler = MpDashScheduler()
        scheduler.set_cellular(False)
        scheduler.set_cellular(True)
        scheduler.set_cellular(True)  # no change
        assert scheduler.deactivations == 1
        assert scheduler.activations == 1


class TestPathManager:
    def test_margin_validation(self, sim):
        conn = warmed(sim)
        with pytest.raises(ValueError):
            MpDashPathManager(conn.scheduler, conn, margin=0.0)

    def test_low_requirement_deactivates_cellular(self, sim):
        conn = warmed(sim)
        manager = MpDashPathManager(conn.scheduler, conn)
        # Preferred path: cwnd 10 * 1448 B / 20 ms ~ 5.8 Mbps.
        manager.on_chunk_request(PAPER_REPRESENTATIONS[0], 5.0)  # 0.26 Mbps
        assert not conn.scheduler.cellular_active

    def test_high_requirement_activates_cellular(self, sim):
        conn = warmed(sim)
        manager = MpDashPathManager(conn.scheduler, conn)
        manager.on_chunk_request(PAPER_REPRESENTATIONS[-1], 5.0)  # 8.47 Mbps
        assert conn.scheduler.cellular_active

    def test_estimate_tracks_cwnd_and_rtt(self, sim):
        conn = warmed(sim)
        manager = MpDashPathManager(conn.scheduler, conn)
        base = manager.preferred_rate_estimate_bps()
        conn.subflows[0].cwnd *= 2
        assert manager.preferred_rate_estimate_bps() == pytest.approx(2 * base)


class TestEndToEnd:
    def test_streaming_session_with_mpdash(self):
        result = run_streaming(StreamingRunConfig(
            scheduler="mpdash", wifi_mbps=4.2, lte_mbps=8.6,
            video_duration=60.0,
        ))
        assert result.finished
        assert result.average_bitrate_bps > 0

    def test_mpdash_reduces_cellular_usage_when_wifi_suffices(self):
        """Fix the rate at 480p (1.6 Mbps), far below the 8.6 Mbps WiFi:
        MP-DASH should move (almost) nothing over LTE while the default
        scheduler spills onto it whenever the WiFi window is full."""
        usage = {}
        for name in ("minrtt", "mpdash"):
            result = run_streaming(StreamingRunConfig(
                scheduler=name, wifi_mbps=8.6, lte_mbps=8.6,
                video_duration=60.0, abr="fixed:480p",
            ))
            total = sum(result.payload_by_interface.values())
            usage[name] = result.payload_by_interface.get("lte", 0) / total
        assert usage["mpdash"] < usage["minrtt"]
        assert usage["mpdash"] < 0.10

    def test_mpdash_still_uses_cellular_when_needed(self):
        result = run_streaming(StreamingRunConfig(
            scheduler="mpdash", wifi_mbps=0.3, lte_mbps=8.6,
            video_duration=60.0,
        ))
        assert result.payload_by_interface.get("lte", 0) > 0
        assert result.finished
