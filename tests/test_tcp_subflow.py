"""Tests for the TCP subflow state machine.

These drive a real subflow over a real link pair via a minimal MPTCP
connection, then assert on the sender-side machinery: RTT sampling, loss
recovery, RTO behaviour, and the idle congestion-window reset.
"""

import pytest

from repro.tcp.subflow import DUP_THRESHOLD, INITIAL_WINDOW
from tests.conftest import build_connection, drain


def single_path_conn(sim, **kw):
    conn = build_connection(sim, path_specs=((10.0, 0.01),), **kw)
    return conn, conn.subflows[0]


class TestSending:
    def test_simple_transfer_delivers_all_bytes(self, sim):
        conn, sf = single_path_conn(sim)
        conn.write(100_000)
        drain(sim)
        assert conn.delivered_bytes == 100_000
        assert sf.stats.payload_bytes_sent == 100_000

    def test_send_respects_initial_window(self, sim):
        conn, sf = single_path_conn(sim)
        conn.write(10_000_000)
        # Before any ACK returns, flight is capped at IW.
        sim.run(until=0.001)
        assert sf.flight == INITIAL_WINDOW

    def test_send_segment_validates_payload(self, sim):
        conn, sf = single_path_conn(sim)
        with pytest.raises(ValueError):
            sf.send_segment(0, 0)
        with pytest.raises(ValueError):
            sf.send_segment(0, sf.mss + 1)

    def test_send_without_window_space_raises(self, sim):
        conn, sf = single_path_conn(sim)
        conn.write(10_000_000)
        sim.run(until=0.001)
        assert not sf.can_send()
        with pytest.raises(RuntimeError):
            sf.send_segment(999_999_999, 100)

    def test_rtt_sampled_from_acks(self, sim):
        conn, sf = single_path_conn(sim)
        conn.write(1448)
        drain(sim)
        assert sf.rtt.samples == 1
        # One-way 10 ms each direction plus serialization.
        assert 0.02 < sf.rtt.srtt < 0.03

    def test_cwnd_grows_in_slow_start(self, sim):
        conn, sf = single_path_conn(sim)
        conn.write(200_000)
        drain(sim)
        assert sf.cwnd > INITIAL_WINDOW

    def test_outstanding_bytes_returns_to_zero(self, sim):
        conn, sf = single_path_conn(sim)
        conn.write(50_000)
        drain(sim)
        assert sf.outstanding_bytes == 0
        assert sf.flight == 0

    def test_bytes_acked_matches_bytes_sent(self, sim):
        conn, sf = single_path_conn(sim)
        conn.write(75_000)
        drain(sim)
        assert sf.stats.bytes_acked == 75_000


class TestEstablishment:
    def test_handshake_delays_secondary_subflow(self, sim):
        conn = build_connection(sim, handshake_delays=True)
        primary, secondary = conn.subflows
        assert primary.established_at < secondary.established_at
        assert not secondary.established

    def test_unestablished_subflow_cannot_send(self, sim):
        conn = build_connection(sim, handshake_delays=True)
        assert not conn.subflows[1].can_send()

    def test_data_flows_after_establishment(self, sim):
        conn = build_connection(sim, handshake_delays=True)
        conn.write(2_000_000)
        drain(sim)
        assert conn.delivered_bytes == 2_000_000
        assert conn.subflows[1].stats.payload_bytes_sent > 0


class TestLossRecovery:
    def test_queue_drop_triggers_fast_retransmit(self, sim):
        # Tiny queue forces drops during slow start.
        conn = build_connection(sim, path_specs=((10.0, 0.02),))
        sf = conn.subflows[0]
        sf.path.forward.queue_bytes = 5_000
        conn.write(2_000_000)
        drain(sim)
        assert conn.delivered_bytes == 2_000_000
        assert sf.stats.fast_retransmits > 0
        assert sf.stats.segments_retransmitted > 0

    def test_loss_halves_cwnd_once_per_recovery(self, sim):
        conn = build_connection(sim, path_specs=((10.0, 0.02),))
        sf = conn.subflows[0]
        sf.path.forward.queue_bytes = 8_000
        conn.write(500_000)
        drain(sim)
        # Multiple drops in one window must count as one recovery episode.
        assert sf.stats.fast_retransmits <= sf.path.forward.stats.packets_dropped_queue

    def test_dup_threshold_respected(self):
        assert DUP_THRESHOLD == 3

    def test_heavy_loss_still_completes_via_rto(self, sim):
        import random as _random
        from repro.net.link import Link
        from repro.net.path import Path
        from repro.mptcp.connection import ConnectionConfig, MptcpConnection
        from repro.core.registry import make_scheduler

        forward = Link(sim, 10e6, 0.01, 100_000, loss_rate=0.2, rng=_random.Random(3))
        reverse = Link(sim, 10e6, 0.01, 100_000)
        path = Path("lossy", forward, reverse)
        conn = MptcpConnection(
            sim, [path], make_scheduler("minrtt"),
            config=ConnectionConfig(handshake_delays=False),
        )
        conn.write(300_000)
        drain(sim, limit=600.0)
        assert conn.delivered_bytes == 300_000


class TestRto:
    def test_rto_fires_when_all_acks_lost(self, sim):
        conn, sf = single_path_conn(sim)
        # Kill the forward link before writing: the first flight vanishes.
        original_send = sf.path.forward.send
        sf.path.forward.send = lambda pkt, cb: False
        conn.write(5 * 1448)
        sim.run(until=0.5)
        sf.path.forward.send = original_send
        drain(sim)
        assert sf.stats.rto_events >= 1
        assert conn.delivered_bytes == 5 * 1448

    def test_rto_backoff_grows_on_repeat(self, sim):
        conn, sf = single_path_conn(sim)
        blocked = {"on": True}
        original_send = sf.path.forward.send

        def flaky(pkt, cb):
            if blocked["on"]:
                return False
            return original_send(pkt, cb)

        sf.path.forward.send = flaky
        conn.write(1448)
        sim.run(until=8.0)
        assert sf.stats.rto_events >= 2
        blocked["on"] = False
        drain(sim)
        assert conn.delivered_bytes == 1448


class TestIdleReset:
    def test_idle_reset_collapses_cwnd(self, sim):
        conn, sf = single_path_conn(sim)
        conn.write(400_000)
        drain(sim)
        grown = sf.cwnd
        assert grown > INITIAL_WINDOW
        # Long idle period, then more data.
        sim.run(until=sim.now + 30.0)
        conn.write(1448)
        assert sf.cwnd == INITIAL_WINDOW
        assert sf.stats.idle_resets == 1
        assert grown * 0.74 < sf.ssthresh  # 3/4 of the decayed window kept

    def test_idle_reset_disabled(self, sim):
        conn, sf = single_path_conn(sim, idle_reset_enabled=False)
        conn.write(400_000)
        drain(sim)
        grown = sf.cwnd
        sim.run(until=sim.now + 30.0)
        conn.write(1448)
        assert sf.cwnd == grown
        assert sf.stats.idle_resets == 0

    def test_short_gap_does_not_reset(self, sim):
        conn, sf = single_path_conn(sim)
        conn.write(400_000)
        sim.run()  # drains everything, including the final no-op RTO event
        grown = sf.cwnd
        # Make the last transmission appear 100 ms ago -- below the RTO
        # (srtt ~ 21 ms + 200 ms variance floor).
        sf._last_send_time = sim.now - 0.1
        conn.write(1448)
        assert sf.cwnd == grown
        assert sf.stats.idle_resets == 0

    def test_iw_resets_counts_idle_and_rto(self, sim):
        conn, sf = single_path_conn(sim)
        sf.stats.idle_resets = 3
        sf.stats.rto_events = 2
        assert sf.stats.iw_resets == 5


class TestPenalize:
    def test_penalize_halves_cwnd(self, sim):
        conn, sf = single_path_conn(sim)
        sf.cwnd = 40.0
        sf.penalize()
        assert sf.cwnd == pytest.approx(20.0)
        assert sf.stats.penalizations == 1

    def test_penalize_floors_at_one(self, sim):
        conn, sf = single_path_conn(sim)
        sf.cwnd = 1.0
        sf.penalize()
        assert sf.cwnd >= 1.0

    def test_oldest_unacked_dsn(self, sim):
        conn, sf = single_path_conn(sim)
        conn.write(10_000_000)
        sim.run(until=0.001)
        assert sf.oldest_unacked_dsn() == 0
        drain(sim)
        assert sf.oldest_unacked_dsn() is None
