"""Edge-case tests of the subflow state machine: Karn's rule, recovery
episode accounting, retransmission interplay, and idle-reset corners."""


from tests.conftest import build_connection, drain


def lossy_single_path(sim, queue_bytes=6_000, **kw):
    conn = build_connection(sim, path_specs=((10.0, 0.02),), **kw)
    conn.subflows[0].path.forward.queue_bytes = queue_bytes
    return conn, conn.subflows[0]


class TestKarn:
    def test_retransmitted_copy_never_feeds_estimator(self, sim):
        """Karn's rule, directly: the ack for a segment marked as a
        retransmission must not add an RTT sample."""
        conn, sf = lossy_single_path(sim, queue_bytes=300_000)
        conn.write(1448)
        sim.run(max_events=1)  # segment handed to the link, ack not back yet
        (segment,) = sf._outstanding.values()
        segment.retransmitted = True
        samples_before = sf.rtt.samples
        drain(sim)
        assert conn.delivered_bytes == 1448
        assert sf.rtt.samples == samples_before

    def test_retransmitted_segments_not_rtt_sampled(self, sim):
        conn, sf = lossy_single_path(sim)
        conn.write(1_000_000)
        drain(sim)
        assert conn.delivered_bytes == 1_000_000
        retransmitted = sf.stats.segments_retransmitted
        assert retransmitted > 0
        # Samples = segments sent minus every transmission of a segment
        # that was ever retransmitted (original sample is discarded by the
        # acked-copy ambiguity rule); at minimum, strictly fewer samples
        # than total transmissions.
        assert sf.rtt.samples < sf.stats.segments_sent

    def test_backoff_cleared_by_fresh_sample(self, sim):
        conn, sf = lossy_single_path(sim)
        sf._rto_backoff = 8.0
        conn.write(1448)
        drain(sim)
        assert sf._rto_backoff == 1.0


class TestRecoveryEpisodes:
    def test_burst_loss_is_one_episode(self, sim):
        """Many drops from one window burst must halve cwnd once, not once
        per drop."""
        conn, sf = lossy_single_path(sim, queue_bytes=4_000)
        conn.write(120_000)
        drain(sim)
        drops = sf.path.forward.stats.packets_dropped_queue
        assert drops >= 2
        assert sf.stats.fast_retransmits < drops

    def test_acked_segment_leaves_retransmit_queue(self, sim):
        """A segment marked lost but then acked (reordered ack) must not
        be retransmitted."""
        conn, sf = lossy_single_path(sim, queue_bytes=300_000)
        conn.write(200_000)
        drain(sim)
        # Clean link: no retransmissions at all.
        assert sf.stats.segments_retransmitted == 0

    def test_flight_never_negative_under_loss(self, sim):
        conn, sf = lossy_single_path(sim)
        conn.write(800_000)
        while sim.peek_time() is not None and sim.now < 120.0:
            sim.run(until=sim.now + 0.05)
            assert sf.flight >= 0
        assert conn.delivered_bytes == 800_000


class TestIdleResetBoundary:
    """RFC 5681 idle restart uses a *strict* ``idle > rto`` inequality."""

    def _grown_idle_subflow(self, sim, last_send_time):
        """A subflow with cwnd > IW, nothing in flight, clock at exactly
        16.0, RTO exactly 1.0, and a controlled last-send time.

        Exact binary floats throughout (16.0, 15.0, 1.0) so the
        ``idle == rto`` case is a true equality, not a ulp coin-flip.
        """
        from repro.tcp.rtt import RttEstimator

        conn, sf = lossy_single_path(sim, queue_bytes=300_000)
        conn.write(200_000)
        drain(sim, limit=16.0)  # transfer finishes well before; clock -> 16.0
        assert conn.delivered_bytes == 200_000
        assert sf._in_flight == 0
        assert sf.cwnd > sf.initial_window
        sf.rtt = RttEstimator()  # no samples: rto is exactly 1.0
        sf._last_send_time = last_send_time
        return conn, sf

    def test_idle_exactly_rto_does_not_reset(self, sim):
        conn, sf = self._grown_idle_subflow(sim, last_send_time=15.0)
        cwnd_before = sf.cwnd
        conn.write(1448)  # idle == 1.0 == rto: strict inequality fails
        assert sf.stats.idle_resets == 0
        assert sf.cwnd == cwnd_before

    def test_idle_above_rto_resets(self, sim):
        conn, sf = self._grown_idle_subflow(sim, last_send_time=14.5)
        cwnd_before = sf.cwnd
        conn.write(1448)  # idle == 1.5 > rto
        assert sf.stats.idle_resets == 1
        assert sf.cwnd == sf.initial_window
        assert sf.ssthresh >= 0.75 * cwnd_before

    def test_no_idle_reset_during_ecf_wait(self, sim):
        """The PR 3 conformance property, at unit scope: while ECF holds
        segments back for the fast subflow, that subflow has data in
        flight, so the idle-restart precondition can never be met."""
        from repro.analysis import events as ev

        conn = build_connection(
            sim, scheduler_name="ecf", path_specs=((10.0, 0.01), (1.0, 0.3))
        )
        with ev.recording() as log:
            # Two objects with an idle think-gap between them: the gap
            # provokes a genuine idle reset *outside* any wait interval,
            # so the containment assertion below is exercised, not vacuous.
            conn.write(400_000)
            drain(sim, limit=100.0)
            conn.write(400_000)
            drain(sim, limit=300.0)
        assert conn.delivered_bytes == 800_000
        decisions = log.of_kind(ev.EcfDecision)
        waits = [d for d in decisions if d.decision == "wait"]
        assert waits, "scenario never exercised an ECF wait"
        resets = log.of_kind(ev.IdleReset)
        # Whenever a reset happened, the scheduler must not have been in
        # its waiting state at that instant.
        waiting_intervals = []
        start_t = None
        for d in decisions:
            if d.waiting_after and start_t is None:
                start_t = d.t
            elif not d.waiting_after and start_t is not None:
                waiting_intervals.append((start_t, d.t))
                start_t = None
        if start_t is not None:
            waiting_intervals.append((start_t, float("inf")))
        for reset in resets:
            for lo, hi in waiting_intervals:
                assert not (lo < reset.t < hi), (
                    f"idle reset at t={reset.t} inside ECF wait ({lo}, {hi})"
                )


class TestIdleResetCorners:
    def test_reset_does_not_fire_below_initial_window(self, sim):
        conn, sf = lossy_single_path(sim, queue_bytes=300_000)
        sf.cwnd = 5.0  # below IW after losses
        sf._last_send_time = 0.0
        sim.run(until=20.0)
        conn.write(1448)
        # cwnd was already below IW: no reset, no counter bump.
        assert sf.stats.idle_resets == 0
        assert sf.cwnd == 5.0

    def test_reset_not_triggered_with_data_in_flight(self, sim):
        conn, sf = lossy_single_path(sim, queue_bytes=300_000)
        conn.write(3_000_000)
        sim.run(until=0.5)  # mid-transfer
        assert sf.flight > 0
        before = sf.stats.idle_resets
        conn.write(1448)
        assert sf.stats.idle_resets == before

    def test_consecutive_resets_counted(self, sim):
        conn, sf = lossy_single_path(sim, queue_bytes=300_000)
        for _ in range(3):
            conn.write(400_000)
            drain(sim, limit=sim.now + 60.0)
            sim.run(until=sim.now + 30.0)  # long idle gap
        assert sf.stats.idle_resets >= 2


class TestAccounting:
    def test_payload_bytes_exclude_retransmissions(self, sim):
        conn, sf = lossy_single_path(sim)
        conn.write(500_000)
        drain(sim)
        assert sf.stats.payload_bytes_sent == 500_000
        assert sf.stats.bytes_sent > 500_000  # headers + retransmissions

    def test_outstanding_segments_vs_bytes_consistent(self, sim):
        conn, sf = lossy_single_path(sim, queue_bytes=300_000)
        conn.write(5_000_000)
        sim.run(until=0.2)
        assert sf.outstanding_segments > 0
        assert sf.outstanding_bytes <= sf.outstanding_segments * sf.mss

    def test_last_data_timestamps_progress(self, sim):
        conn, sf = lossy_single_path(sim, queue_bytes=300_000)
        conn.write(100_000)
        drain(sim)
        assert sf.stats.last_data_sent_at is not None
        assert sf.stats.last_data_acked_at >= sf.stats.last_data_sent_at
