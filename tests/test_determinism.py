"""Reproducibility tests: identical seeds must yield identical results.

Every experiment harness is supposed to be a pure function of its
configuration and seed -- that is what makes the paper's scenario
comparisons ("each scheduler sees the same scenario") meaningful.
"""

from repro.apps.bulk import run_bulk_download
from repro.experiments.runner import StreamingRunConfig, run_streaming
from repro.experiments.wild import run_wild_streaming
from repro.net.profiles import lte_config, wifi_config
from repro.workloads.scenarios import random_bandwidth_scenarios
from repro.workloads.web import run_web_browsing


class TestDeterminism:
    def test_bulk_download_bitwise_stable(self):
        paths = (wifi_config(1.0), lte_config(8.6))
        a = run_bulk_download("ecf", paths, 512 * 1024, seed=11)
        b = run_bulk_download("ecf", paths, 512 * 1024, seed=11)
        assert a.completion_time == b.completion_time
        assert a.payload_by_path == b.payload_by_path

    def test_streaming_chunk_log_stable(self):
        config = StreamingRunConfig(
            scheduler="ecf", wifi_mbps=1.1, lte_mbps=8.6,
            video_duration=30.0, seed=7,
        )
        a = run_streaming(config)
        b = run_streaming(config)
        assert [c.completed_at for c in a.metrics.chunks] == [
            c.completed_at for c in b.metrics.chunks
        ]
        assert a.ooo_delays == b.ooo_delays

    def test_streaming_seed_changes_results(self):
        base = dict(scheduler="minrtt", wifi_mbps=1.1, lte_mbps=8.6, video_duration=30.0)
        # Different seeds only matter through stochastic elements; with
        # no loss the run is seed-independent, which is itself worth
        # pinning: the testbed figures are driven by dynamics, not luck.
        a = run_streaming(StreamingRunConfig(seed=1, **base))
        b = run_streaming(StreamingRunConfig(seed=2, **base))
        assert a.average_bitrate_bps == b.average_bitrate_bps

    def test_web_browsing_stable(self):
        paths = (wifi_config(2.0), lte_config(8.6))
        a = run_web_browsing("minrtt", paths, seed=5)
        b = run_web_browsing("minrtt", paths, seed=5)
        assert a.object_completion_times == b.object_completion_times
        assert a.page_load_time == b.page_load_time

    def test_wild_runs_stable(self):
        a = run_wild_streaming(runs=2, video_duration=15.0)
        b = run_wild_streaming(runs=2, video_duration=15.0)
        for run_a, run_b in zip(a, b):
            assert run_a.wifi_config == run_b.wifi_config
            assert (
                run_a.throughput_mbps("ecf") == run_b.throughput_mbps("ecf")
            )

    def test_scenarios_shared_across_schedulers(self):
        """The same scenario object drives every scheduler: its schedule
        must not be consumed/mutated by a run."""
        scenario = random_bandwidth_scenarios(count=1, duration=100.0)[0]
        before = list(scenario.wifi.schedule)
        for scheduler in ("minrtt", "ecf"):
            run_streaming(StreamingRunConfig(
                scheduler=scheduler,
                wifi_mbps=scenario.wifi.rate_at(0.0) / 1e6,
                lte_mbps=scenario.lte.rate_at(0.0) / 1e6,
                video_duration=20.0,
                wifi_process=scenario.wifi,
                lte_process=scenario.lte,
            ))
        assert scenario.wifi.schedule == before
