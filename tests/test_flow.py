"""Tests for the whole-program analyzer (repro.analysis.flow + rules8xx).

Covers the seeded fixture package (``tests/data/flow``), the
interprocedural taint depth, noqa and baseline suppression, the
incremental summary cache (a warm run parses nothing), and SARIF
output against the structural validator.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.baseline import (
    apply_baseline,
    fingerprint,
    load_baseline,
    make_baseline,
    save_baseline,
)
from repro.analysis.flow import (
    Project,
    Violation,
    extract_module,
    module_name_for,
)
from repro.analysis.lint import RULES, run_lint
from repro.analysis.rules8xx import RULES_8XX
from repro.analysis.sarif import to_sarif, validate
from repro.cli import main as cli_main

FLOW_DIR = Path(__file__).parent / "data" / "flow"

#: No registries needed: the fixtures exercise the flow rules only.
NO_REGISTRIES: dict = {}


def flow_run(paths=None, **kwargs):
    kwargs.setdefault("registries", NO_REGISTRIES)
    return run_lint(paths or [FLOW_DIR], **kwargs)


def findings_in(run, filename):
    return [v for v in run.violations if v.path.endswith(filename)]


@pytest.fixture(scope="module")
def fixture_run():
    """One analysis of the fixture package, shared across assertions."""
    return flow_run()


class TestFixturePackage:
    """Every RPR8xx rule fires on its seeded module, nowhere else."""

    def test_rpr811_fires_on_deep(self, fixture_run):
        codes = {v.code for v in findings_in(fixture_run, "deep.py")}
        assert codes == {"RPR811"}

    def test_rpr812_and_813_fire_on_randomness(self, fixture_run):
        codes = {v.code for v in findings_in(fixture_run, "randomness.py")}
        assert {"RPR812", "RPR813"} <= codes

    def test_rpr821_fires_on_specmut(self, fixture_run):
        violations = findings_in(fixture_run, "specmut.py")
        assert [v.code for v in violations] == ["RPR821"]
        assert "RouteSpec" in violations[0].message
        assert "spec.weights.append" in violations[0].message

    def test_rpr831_fires_on_unordered(self, fixture_run):
        violations = findings_in(fixture_run, "unordered.py")
        assert [v.code for v in violations] == ["RPR831"]
        # The sink is one call away: the message must show the path.
        assert "via enqueue" in violations[0].message

    def test_rpr841_fires_on_units(self, fixture_run):
        violations = findings_in(fixture_run, "units.py")
        assert {v.code for v in violations} == {"RPR841"}
        messages = " ".join(v.message for v in violations)
        assert "seconds" in messages and "bytes" in messages

    def test_clean_module_is_quiet(self, fixture_run):
        assert findings_in(fixture_run, "clean.py") == []

    def test_noqa_suppresses_flow_finding(self, fixture_run):
        assert findings_in(fixture_run, "suppressed.py") == []

    def test_every_8xx_rule_represented(self, fixture_run):
        fired = {v.code for v in fixture_run.violations if v.code.startswith("RPR8")}
        assert fired == set(RULES_8XX)


class TestTaintDepth:
    def test_two_hop_chain_reported(self, fixture_run):
        [deepest] = [
            v
            for v in findings_in(fixture_run, "deep.py")
            if "second_hop()" in v.message
        ]
        assert "second_hop -> first_hop -> read_clock -> time.time()" in deepest.message

    def test_cross_module_resolution(self):
        # The chain starts in deep.py but the source lives in clocks.py:
        # resolution must cross the import boundary.
        run = flow_run([FLOW_DIR / "clocks.py", FLOW_DIR / "deep.py"])
        assert any(
            v.code == "RPR811" and v.path.endswith("deep.py")
            for v in run.violations
        )

    def test_source_module_alone_has_no_8xx(self):
        run = flow_run([FLOW_DIR / "clocks.py"])
        assert {v.code for v in run.violations} == {"RPR101"}


class TestProjectInternals:
    def test_module_names(self):
        assert module_name_for("src/repro/sim/engine.py") == "repro.sim.engine"
        assert (
            module_name_for("tests/data/flow/deep.py") == "tests.data.flow.deep"
        )

    def test_taint_scope_excludes_telemetry_packages(self):
        source = "import time\n\ndef stamp():\n    return time.time()\n"
        summary = extract_module(source, "src/repro/obs/journal.py")
        project = Project([summary])
        assert not project.in_taint_scope("repro.obs.journal")
        assert project.in_taint_scope("repro.sim.engine")
        # Non-repro files (fixtures, scripts) are always in scope.
        assert project.in_taint_scope("tests.data.flow.deep")


class TestBaseline:
    def test_round_trip(self, tmp_path):
        run = flow_run()
        document = make_baseline(run.all_violations)
        path = tmp_path / "baseline.json"
        save_baseline(document, path)
        fresh, suppressed = apply_baseline(
            run.all_violations, load_baseline(path)
        )
        assert fresh == []
        assert suppressed == len(run.all_violations)

    def test_new_finding_survives_baseline(self):
        run = flow_run()
        document = make_baseline(run.all_violations[:-1])
        fresh, _ = apply_baseline(run.all_violations, document)
        assert fresh == [run.all_violations[-1]]

    def test_fingerprint_is_line_independent(self):
        a = Violation("m.py", 3, 1, "RPR811", "msg", "fix")
        b = Violation("m.py", 99, 7, "RPR811", "msg", "fix")
        assert fingerprint(a) == fingerprint(b)

    def test_count_budget(self):
        twin = [
            Violation("m.py", 1, 1, "RPR841", "msg", "fix"),
            Violation("m.py", 2, 1, "RPR841", "msg", "fix"),
        ]
        document = make_baseline(twin)
        fresh, suppressed = apply_baseline(twin + twin[:1], document)
        assert suppressed == 2 and len(fresh) == 1

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "findings": {}}')
        with pytest.raises(ValueError, match="version"):
            load_baseline(path)


class TestIncrementalCache:
    def test_warm_run_parses_nothing(self, tmp_path):
        cache = tmp_path / "cache.json"
        cold = flow_run(cache_path=cache)
        assert cold.stats.parsed == cold.stats.files > 0
        warm = flow_run(cache_path=cache)
        assert warm.stats.parsed == 0
        assert warm.stats.reused == warm.stats.files == cold.stats.files
        assert [v.format() for v in warm.violations] == [
            v.format() for v in cold.violations
        ]

    def test_edited_file_reparsed(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text("import time\n\ndef stamp():\n    return time.time()\n")
        cache = tmp_path / "cache.json"
        flow_run([src], cache_path=cache)
        src.write_text("def stamp(now):\n    return now\n")
        warm = flow_run([src], cache_path=cache)
        assert warm.stats.parsed == 1
        assert warm.violations == []

    def test_cache_invalidated_by_registry_change(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text("s = make_scheduler('ecf')\n")
        cache = tmp_path / "cache.json"
        first = run_lint(
            [src], registries={"scheduler": {"ecf"}}, cache_path=cache
        )
        assert first.violations == []
        second = run_lint(
            [src], registries={"scheduler": {"minrtt"}}, cache_path=cache
        )
        assert second.stats.parsed == 1  # signature changed, no stale reuse
        assert [v.code for v in second.violations] == ["RPR501"]


class TestSarif:
    def test_output_validates(self, fixture_run):
        document = to_sarif(fixture_run.violations, RULES)
        assert validate(document) == []

    def test_json_round_trip(self, fixture_run):
        document = json.loads(json.dumps(to_sarif(fixture_run.violations, RULES)))
        assert validate(document) == []
        results = document["runs"][0]["results"]
        assert len(results) == len(fixture_run.violations)
        rules = document["runs"][0]["tool"]["driver"]["rules"]
        assert {r["id"] for r in rules} == set(RULES)
        for result in results:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_validator_catches_problems(self):
        assert validate({"version": "2.1.0", "runs": []})
        bad_result = to_sarif([], RULES)
        bad_result["runs"][0]["results"].append({"ruleId": "NOPE"})
        assert any("NOPE" in p for p in validate(bad_result))


class TestCliWiring:
    def test_sarif_flag_writes_file(self, tmp_path, capsys):
        out = tmp_path / "lint.sarif"
        code = cli_main(
            ["lint", str(FLOW_DIR), "--sarif", str(out), "--no-cache"]
        )
        assert code == 1  # the fixtures are violations by design
        document = json.loads(out.read_text())
        assert validate(document) == []
        assert document["runs"][0]["results"]

    def test_baseline_flag_gates(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert (
            cli_main(
                ["lint", str(FLOW_DIR), "--update-baseline",
                 "--baseline", str(baseline), "--no-cache"]
            )
            == 0
        )
        assert baseline.exists()
        assert (
            cli_main(
                ["lint", str(FLOW_DIR), "--baseline", str(baseline), "--no-cache"]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "baselined" in err

    def test_changed_with_no_changed_files(self, tmp_path, capsys, monkeypatch):
        # In a scratch git-less directory every git call fails, so the
        # changed set is empty and lint exits 0 without analyzing.
        monkeypatch.chdir(tmp_path)
        assert cli_main(["lint", str(FLOW_DIR), "--changed", "--no-cache"]) == 0
        assert "no changed python files" in capsys.readouterr().err
