"""Behavioural tests of ECF inside a live connection.

The unit tests in test_schedulers.py pin Algorithm 1's branches; these
exercise the state machine as the connection actually drives it: waiting
ends when the fast path frees, hysteresis persists across consecutive
decisions, and more than two subflows are handled.
"""


from repro.core.ecf import EcfScheduler
from tests.conftest import build_connection, drain


def warmed_conn(sim, path_specs=((10.0, 0.005), (1.0, 0.05)), **kw):
    conn = build_connection(sim, scheduler_name="ecf", path_specs=path_specs, **kw)
    for sf, rtt in zip(conn.subflows, (0.01, 0.1, 0.2, 0.4)):
        sf.rtt.add_sample(rtt)
    return conn


class TestWaitingLifecycle:
    def test_wait_releases_when_fast_path_frees(self, sim):
        conn = warmed_conn(sim)
        fast, slow = conn.subflows
        fast.cwnd = slow.cwnd = 10.0
        fast._in_flight = 10
        conn.unassigned_bytes = conn.mss
        assert conn.scheduler.select(conn) is None
        assert conn.scheduler.waiting
        # An ACK frees the fast window; the next decision uses it.
        fast._in_flight = 9
        assert conn.scheduler.select(conn) is fast

    def test_waiting_persists_across_decisions(self, sim):
        conn = warmed_conn(sim)
        fast, slow = conn.subflows
        fast.cwnd = slow.cwnd = 10.0
        fast._in_flight = 10
        conn.unassigned_bytes = conn.mss
        for _ in range(3):
            assert conn.scheduler.select(conn) is None
        assert conn.scheduler.wait_decisions == 3

    def test_full_transfer_with_waiting_episodes_completes(self, sim):
        conn = warmed_conn(sim)
        for _ in range(5):
            conn.write(400_000)
        drain(sim)
        assert conn.delivered_bytes == 2_000_000

    def test_scheduler_wait_counter_reflects_episodes(self, sim):
        conn = warmed_conn(sim)
        conn.write(2_000_000)
        drain(sim)
        assert conn.scheduler.decisions > 0
        # Waits plus sends account for every decision.
        scheduler = conn.scheduler
        assert scheduler.waits <= scheduler.decisions


class TestManySubflows:
    def test_fastest_of_four_is_preferred(self, sim):
        conn = warmed_conn(
            sim,
            path_specs=((10.0, 0.005), (8.0, 0.02), (5.0, 0.05), (1.0, 0.1)),
        )
        conn.unassigned_bytes = 100 * conn.mss
        assert conn.scheduler.select(conn) is conn.subflows[0]

    def test_second_fastest_checked_when_fastest_full(self, sim):
        conn = warmed_conn(
            sim,
            path_specs=((10.0, 0.005), (8.0, 0.02), (1.0, 0.1)),
        )
        first, second, third = conn.subflows
        first._in_flight = int(first.cwnd)
        conn.unassigned_bytes = 1000 * conn.mss  # plenty: no waiting
        assert conn.scheduler.select(conn) is second

    def test_four_subflow_transfer_completes(self, sim):
        conn = warmed_conn(
            sim,
            path_specs=((10.0, 0.005), (8.0, 0.02), (5.0, 0.05), (1.0, 0.1)),
        )
        conn.write(3_000_000)
        drain(sim)
        assert conn.delivered_bytes == 3_000_000
        # The scheduler spread bulk load beyond the fastest path.
        sent = conn.payload_sent_by_subflow()
        assert sum(1 for v in sent.values() if v > 0) >= 2


def ineq2_boundary_conn(sim, use_second_inequality=True):
    """A connection parked where inequality 1 holds but inequality 2 fails.

    fast: srtt 0.02s, sigma 0 (single sample); slow: srtt 0.04125s,
    sigma ~= 0.00707s (samples 0.04, 0.05), so delta ~= 0.00707.  With
    k = 1 segment and both cwnds at 10:

    * inequality 1: n = 2, 2 * 0.02 = 0.04 < 0.04125 + 0.00707   (holds)
    * inequality 2: 1 * 0.04125 < 2 * 0.02 + 0.00707             (fails)

    Stock ECF therefore sends on the slow subflow; with the second
    inequality ablated the first alone decides, and the scheduler waits.
    """
    conn = build_connection(sim, scheduler_name="ecf")
    scheduler = EcfScheduler(use_second_inequality=use_second_inequality)
    conn.scheduler = scheduler
    scheduler.attach(conn)
    fast, slow = conn.subflows
    fast.rtt.add_sample(0.02)
    slow.rtt.add_sample(0.04)
    slow.rtt.add_sample(0.05)
    fast.cwnd = slow.cwnd = 10.0
    fast._in_flight = 10  # fastest full: the wait-or-send branch runs
    conn.unassigned_bytes = conn.mss  # k = 1 segment
    return conn


class TestSecondInequalityAblation:
    def test_stock_sends_on_slow_when_second_inequality_fails(self, sim):
        conn = ineq2_boundary_conn(sim, use_second_inequality=True)
        _, slow = conn.subflows
        assert conn.scheduler.select(conn) is slow
        assert conn.scheduler.send_on_slow_decisions == 1

    def test_ablation_waits_on_first_inequality_alone(self, sim):
        conn = ineq2_boundary_conn(sim, use_second_inequality=False)
        assert conn.scheduler.select(conn) is None
        assert conn.scheduler.waiting
        assert conn.scheduler.wait_decisions == 1

    def test_ablation_still_sends_on_slow_when_first_inequality_fails(self, sim):
        conn = ineq2_boundary_conn(sim, use_second_inequality=False)
        _, slow = conn.subflows
        conn.unassigned_bytes = 2000 * conn.mss  # k huge: ineq 1 fails
        assert conn.scheduler.select(conn) is slow
        assert not conn.scheduler.waiting

    def test_ineq2_forced_send_leaves_hysteresis_latched(self, sim):
        # A send forced by inequality 2 must not clear the waiting state:
        # only inequality 1 failing does (the beta hysteresis contract).
        conn = ineq2_boundary_conn(sim, use_second_inequality=True)
        _, slow = conn.subflows
        conn.scheduler.waiting = True
        assert conn.scheduler.select(conn) is slow
        assert conn.scheduler.waiting

    def test_ablated_transfer_completes(self, sim):
        conn = ineq2_boundary_conn(sim, use_second_inequality=False)
        conn.unassigned_bytes = 0
        conn.subflows[0]._in_flight = 0
        conn.write(1_000_000)
        drain(sim)
        assert conn.delivered_bytes == 1_000_000


class TestUnitsAndEdges:
    def test_k_is_measured_in_bytes_and_scaled_by_mss(self, sim):
        """The inequality sees k in segments: one MSS-sized write is one
        packet's worth of k."""
        conn = warmed_conn(sim)
        fast, slow = conn.subflows
        fast.cwnd = slow.cwnd = 10.0
        fast._in_flight = 10
        conn.unassigned_bytes = conn.mss  # k = 1 segment
        assert conn.scheduler.select(conn) is None  # waits (paper example)
        conn.scheduler.waiting = False
        conn.unassigned_bytes = 2000 * conn.mss  # k huge
        assert conn.scheduler.select(conn) is slow

    def test_no_established_subflows_waits(self, sim):
        conn = build_connection(sim, scheduler_name="ecf", handshake_delays=True)
        # Before any handshake completes, nothing is selectable.
        assert conn.scheduler.select(conn) is None

    def test_single_subflow_degenerates_to_direct_send(self, sim):
        conn = build_connection(
            sim, scheduler_name="ecf", path_specs=((10.0, 0.01),)
        )
        conn.write(500_000)
        drain(sim)
        assert conn.delivered_bytes == 500_000

    def test_scheduler_stats_expose_decision_mix(self, sim):
        scheduler = EcfScheduler()
        assert scheduler.wait_decisions == 0
        assert scheduler.send_on_slow_decisions == 0
