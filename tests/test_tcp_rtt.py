"""Tests for the RFC 6298 RTT estimator with ECF's sigma extension."""

import pytest

from repro.tcp.rtt import RttEstimator


class TestBasics:
    def test_first_sample_initializes(self):
        est = RttEstimator()
        est.add_sample(0.1)
        assert est.srtt == pytest.approx(0.1)
        assert est.rttvar == pytest.approx(0.05)

    def test_rejects_nonpositive_sample(self):
        with pytest.raises(ValueError):
            RttEstimator().add_sample(0.0)

    def test_ewma_smoothing(self):
        est = RttEstimator()
        est.add_sample(0.1)
        est.add_sample(0.2)
        # srtt = 7/8*0.1 + 1/8*0.2
        assert est.srtt == pytest.approx(0.1125)

    def test_rttvar_update(self):
        est = RttEstimator()
        est.add_sample(0.1)
        est.add_sample(0.2)
        # rttvar = 3/4*0.05 + 1/4*|0.1-0.2|
        assert est.rttvar == pytest.approx(0.0625)

    def test_initial_rtt_constructor(self):
        est = RttEstimator(initial_rtt=0.2)
        assert est.srtt == pytest.approx(0.2)

    def test_has_estimate(self):
        est = RttEstimator()
        assert not est.has_estimate
        est.add_sample(0.1)
        assert est.has_estimate

    def test_smoothed_or_default(self):
        est = RttEstimator()
        assert est.smoothed_or(0.3) == 0.3
        est.add_sample(0.1)
        assert est.smoothed_or(0.3) == pytest.approx(0.1)

    def test_samples_counted(self):
        est = RttEstimator()
        for _ in range(5):
            est.add_sample(0.1)
        assert est.samples == 5

    def test_mean_rtt(self):
        est = RttEstimator()
        est.add_sample(0.1)
        est.add_sample(0.3)
        assert est.mean_rtt == pytest.approx(0.2)

    def test_mean_rtt_without_samples_is_zero(self):
        assert RttEstimator().mean_rtt == 0.0


class TestRto:
    def test_initial_rto_is_one_second(self):
        assert RttEstimator().rto == 1.0

    def test_rto_has_linux_variance_floor(self):
        est = RttEstimator()
        for _ in range(20):
            est.add_sample(0.1)  # rttvar decays toward 0
        # RTO >= srtt + 200 ms even with tiny variance.
        assert est.rto == pytest.approx(0.1 + 0.2, abs=0.01)

    def test_rto_tracks_variance(self):
        est = RttEstimator()
        for sample in (0.1, 0.5, 0.1, 0.5, 0.1, 0.5):
            est.add_sample(sample)
        assert est.rto > 0.3 + 0.2 * 0  # well above the floor
        assert est.rto > est.srtt + 0.2

    def test_rto_capped_at_max(self):
        est = RttEstimator(max_rto=2.0)
        est.add_sample(10.0)
        assert est.rto == 2.0


class TestSigma:
    def test_sigma_zero_before_two_samples(self):
        est = RttEstimator()
        assert est.sigma == 0.0
        est.add_sample(0.1)
        assert est.sigma == 0.0

    def test_sigma_of_constant_samples_is_zero(self):
        est = RttEstimator()
        for _ in range(10):
            est.add_sample(0.1)
        assert est.sigma == pytest.approx(0.0, abs=1e-12)

    def test_sigma_of_varying_samples_positive(self):
        est = RttEstimator()
        for sample in (0.1, 0.2, 0.1, 0.2):
            est.add_sample(sample)
        assert est.sigma > 0.0

    def test_sigma_windowed_forgets_old_variation(self):
        est = RttEstimator(sigma_window=4)
        for sample in (0.1, 0.9, 0.1, 0.9):
            est.add_sample(sample)
        high_sigma = est.sigma
        for _ in range(8):
            est.add_sample(0.5)
        assert est.sigma < high_sigma / 10

    def test_sigma_window_validation(self):
        with pytest.raises(ValueError):
            RttEstimator(sigma_window=1)
