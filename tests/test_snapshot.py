"""Checkpoint/fork round-trips for :mod:`repro.sim.snapshot`.

The coverage suite is auto-generated from the committed
``state-model.json``: every class that declares ``STATE_FIELDS`` must
show up (itself or via a subclass) in at least one of the fixture
worlds' captures, so adding snapshot state to a class without a
round-trip fixture here fails a parametrized case by name.
"""

import json
from pathlib import Path

import pytest

from repro.apps.bulk import BulkDownloadSpec
from repro.apps.http import HttpSession
from repro.core.spec import SchedulerSpec, build
from repro.experiments.twin import build_world
from repro.mptcp.connection import ConnectionConfig, MptcpConnection
from repro.net.profiles import lte_config, wifi_config
from repro.net.topology import LinkSpec, chain_path
from repro.sim import snapshot as snapmod
from repro.sim.engine import Simulator
from repro.sim.snapshot import SnapshotError, capture, fork, restore
from repro.sim.trace import TraceRecorder

MODEL_PATH = Path(__file__).parent.parent / "state-model.json"
MODEL = json.loads(MODEL_PATH.read_text())

#: Every class the static model records as declaring STATE_FIELDS.
DECLARING = sorted(
    name
    for name, info in MODEL["classes"].items()
    if info.get("declared_state") is not None
)


class Ticker:
    """Module-level so restore can resolve it by qualified name."""

    STATE_FIELDS = ("hits",)

    def __init__(self):
        self.hits = 0

    def on_tick(self):
        self.hits += 1


def _spec(scheduler="ecf", size=96_000, seed=3, cc=None, loss=0.0):
    connection = None if cc is None else ConnectionConfig(congestion_control=cc)
    return BulkDownloadSpec(
        scheduler=scheduler,
        path_configs=(wifi_config(1.0, loss_rate=loss),
                      lte_config(8.6, loss_rate=loss)),
        size=size,
        seed=seed,
        connection=connection,
    )


def _midrun_world(scheduler="ecf", cc=None, loss=0.0, events=200):
    """A bulk world paused at an event boundary mid-download."""
    world = build_world(_spec(scheduler=scheduler, cc=cc, loss=loss))
    world.sim.run(until=world.spec.timeout, max_events=events)
    return world


def _chain_world():
    """A multi-hop (CompositeForward) world, captured before any send."""
    sim = Simulator()
    path = chain_path(
        sim,
        "chain",
        [LinkSpec(rate_mbps=10.0, one_way_delay=0.01, name="access"),
         LinkSpec(rate_mbps=5.0, one_way_delay=0.02, name="core")],
    )
    scheduler = build(SchedulerSpec.of("minrtt"))
    conn = MptcpConnection(sim, [path], scheduler, name="chain-conn")
    session = HttpSession(sim, conn)
    return sim, {"conn": conn, "session": session}


@pytest.fixture(scope="module")
def world_snapshots():
    """Name -> (world snapshot) for the coverage and round-trip suites."""
    snaps = {}

    ecf = _midrun_world("ecf")
    trace = TraceRecorder(ecf.sim)
    trace.record("cwnd.test", 0.1, 10.0)
    trace.record("cwnd.test", 0.2, 12.0)
    roots = dict(ecf.roots())
    roots["trace"] = trace
    snaps["bulk_ecf_midrun"] = capture(ecf.sim, roots)

    # Loss pushes CUBIC out of slow start so lazy _CubicState exists.
    cubic = _midrun_world("blest", cc="cubic", loss=0.05, events=400)
    snaps["bulk_blest_cubic_midrun"] = capture(cubic.sim, cubic.roots())

    daps = _midrun_world("daps")
    snaps["bulk_daps_midrun"] = capture(daps.sim, daps.roots())

    rr = _midrun_world("roundrobin")
    snaps["bulk_roundrobin_midrun"] = capture(rr.sim, rr.roots())

    sim, roots = _chain_world()
    snaps["chain_t0"] = capture(sim, roots)

    return snaps


@pytest.fixture(scope="module")
def captured_classes(world_snapshots):
    classes = set()
    for snap in world_snapshots.values():
        for node in snap.nodes:
            if node["cls"] != "random.Random":
                classes.add(snapmod._resolve_class(node["cls"]))
    return classes


class TestModelCoverage:
    """Auto-generated: one case per STATE_FIELDS-declaring class."""

    @pytest.mark.parametrize("qualname", DECLARING)
    def test_declared_class_appears_in_a_fixture_world(
        self, captured_classes, qualname
    ):
        declared = snapmod._resolve_class(qualname)
        assert any(
            issubclass(cls, declared) for cls in captured_classes
        ), f"{qualname} declares STATE_FIELDS but no fixture world captures it"

    def test_model_gate_is_active(self):
        # The committed model was found next to src/; the static gate is
        # live, not silently skipped.
        assert snapmod._model_index() is not None


class TestRoundTrip:
    """capture -> restore -> capture must be a fixed point."""

    @pytest.mark.parametrize(
        "name",
        ["bulk_ecf_midrun", "bulk_blest_cubic_midrun", "bulk_daps_midrun",
         "bulk_roundrobin_midrun", "chain_t0"],
    )
    def test_recapture_digest_is_identical(self, world_snapshots, name):
        snap = world_snapshots[name]
        world = restore(snap)
        sim = world.pop("sim")
        again = capture(sim, world)
        assert again.digest() == snap.digest()

    def test_restored_future_replays_identically(self):
        world = _midrun_world("ecf")
        snap = capture(world.sim, world.roots())
        original = world.run_to_completion()

        twin = restore(snap)
        twin["sim"].run(until=world.spec.timeout)
        from repro.experiments.twin import finish

        replayed = finish(world.spec, twin["conn"], twin["recorder"])
        assert replayed.to_dict() == original.to_dict()

    def test_restored_world_is_independent(self):
        world = _midrun_world("ecf")
        snap = capture(world.sim, world.roots())
        before = world.conn.delivered_bytes
        twin = restore(snap)
        twin["sim"].run(until=world.spec.timeout)
        # Running the twin to completion must not advance the original.
        assert world.conn.delivered_bytes == before
        assert world.sim.now < twin["sim"].now

    def test_shared_rng_stream_stays_aliased(self):
        world = _midrun_world("ecf")
        snap = capture(world.sim, world.roots())
        twin = restore(snap)
        streams = twin["rngs"]._streams
        links = {
            sf.path.forward.name: sf.path.forward.rng
            for sf in twin["conn"].subflows
        }
        # Each restored Link.rng must be the very object the restored
        # registry holds -- two copies would diverge after one draw.
        aliased = [
            rng is link_rng
            for rng in streams.values()
            for link_rng in links.values()
            if rng is link_rng
        ]
        assert aliased, "no Link.rng aliases a registry stream after restore"


class TestTimerRebinding:
    """Live timers rebind their callbacks to the *restored* owners."""

    def test_pending_timer_fires_on_restored_instance(self):
        sim = Simulator()
        ticker = Ticker()
        sim.schedule(1.0, ticker.on_tick)
        snap = capture(sim, {"ticker": ticker})

        world = restore(snap)
        world["sim"].run()
        assert world["ticker"].hits == 1
        assert ticker.hits == 0  # the original never ticked

    def test_cancelled_timer_stays_cancelled(self):
        sim = Simulator()
        ticker = Ticker()
        timer = sim.schedule(1.0, ticker.on_tick)
        sim.schedule(2.0, ticker.on_tick)
        timer.cancel()
        world = restore(capture(sim, {"ticker": ticker}))
        world["sim"].run()
        assert world["ticker"].hits == 1

    def test_receiver_on_deliver_rebinds_to_restored_owner(self):
        world = _midrun_world("ecf")
        snap = capture(world.sim, world.roots())
        twin = restore(snap)
        bound = twin["conn"].receiver.on_deliver
        # run_bulk wires on_deliver to the HttpSession's _on_bytes; the
        # restored binding must target the restored session, not the
        # captured one.
        assert bound.__self__ is twin["session"]
        assert bound.__self__ is not world.session


class TestRefusals:
    """The walk refuses anything outside the snapshot contract."""

    def test_capture_mid_run_is_refused(self):
        sim = Simulator()
        failures = []

        def probe():
            try:
                capture(sim)
            except SnapshotError as exc:
                failures.append(str(exc))

        sim.schedule(1.0, probe)
        sim.run()
        assert failures and "between run() calls" in failures[0]

    def test_reserved_root_name(self):
        sim = Simulator()
        with pytest.raises(SnapshotError, match="reserved"):
            capture(sim, {"sim": sim})

    def test_undeclared_class_is_refused(self):
        class Opaque:
            pass

        sim = Simulator()
        with pytest.raises(SnapshotError, match="declares no STATE_FIELDS"):
            capture(sim, {"thing": Opaque()})

    def test_attr_outside_contract_is_refused(self):
        class Partial:
            STATE_FIELDS = ("a",)

            def __init__(self):
                self.a = 1
                self.b = 2  # never declared

        sim = Simulator()
        with pytest.raises(SnapshotError, match="outside its snapshot contract"):
            capture(sim, {"thing": Partial()})

    def test_sanitizer_scratch_is_skipped_not_refused(self):
        class Holder:
            STATE_FIELDS = ("a",)

            def __init__(self):
                self.a = 1
                self._sz_scratch = object()

        sim = Simulator()
        snap = capture(sim, {"thing": Holder()})
        node = snap.nodes[snap.roots["thing"]["id"]]
        assert node["fields"] == {"a": 1}

    def test_lambda_in_state_is_refused(self):
        class Holder:
            STATE_FIELDS = ("cb",)

            def __init__(self):
                self.cb = lambda: None

        sim = Simulator()
        with pytest.raises(SnapshotError, match="lambdas"):
            capture(sim, {"thing": Holder()})

    def test_closure_in_state_is_refused(self):
        def make(x):
            def closure():
                return x

            return closure

        class Holder:
            STATE_FIELDS = ("cb",)

            def __init__(self):
                self.cb = make(3)

        sim = Simulator()
        with pytest.raises(SnapshotError, match="closures are not rebindable"):
            capture(sim, {"thing": Holder()})

    def test_field_absent_from_model_is_refused(self, monkeypatch):
        class Gated:
            STATE_FIELDS = ("a", "b")

            def __init__(self):
                self.a = 1
                self.b = 2

        qual = f"{Gated.__module__}.{Gated.__qualname__}"
        monkeypatch.setattr(snapmod, "_MODEL_LOADED", True)
        monkeypatch.setattr(snapmod, "_MODEL_INDEX", {qual: {"a"}})
        sim = Simulator()
        with pytest.raises(SnapshotError, match="not in state-model.json"):
            capture(sim, {"thing": Gated()})


class TestFork:
    def test_fork_override_sees_the_roots(self):
        world = _midrun_world("ecf")
        snap = capture(world.sim, world.roots())
        seen = {}

        def override(roots):
            seen.update(roots)
            roots["conn"].scheduler.force_decision(0, "wait")

        forked = fork(snap, override)
        assert seen["sim"] is forked["sim"]
        assert forked["conn"].scheduler.forced_decisions == {0: "wait"}

    def test_fork_without_override_is_plain_restore(self):
        sim = Simulator()
        world = fork(capture(sim))
        assert isinstance(world["sim"], Simulator)
        assert world["sim"] is not sim
