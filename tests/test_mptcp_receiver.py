"""Tests for the connection-level receiver (reorder buffer)."""

import pytest

from repro.mptcp.receiver import MptcpReceiver
from repro.net.packet import Packet


def data(dsn, payload=100, sf=0):
    return Packet(size=payload + 60, payload=payload, dsn=dsn, subflow_id=sf)


@pytest.fixture
def rx(sim):
    return MptcpReceiver(sim)


class TestInOrder:
    def test_in_order_delivery(self, sim, rx):
        delivered = []
        rx.on_deliver = delivered.append
        rx.on_data(data(0))
        rx.on_data(data(100))
        assert delivered == [100, 100]
        assert rx.expected_dsn == 200
        assert rx.delivered_bytes == 200

    def test_in_order_has_zero_ooo_delay(self, sim, rx):
        rx.on_data(data(0))
        assert rx.ooo_delays == [0.0]

    def test_data_ack_tracks_expected(self, sim, rx):
        rx.on_data(data(0))
        assert rx.data_ack == 100


class TestReordering:
    def test_gap_buffers_until_filled(self, sim, rx):
        delivered = []
        rx.on_deliver = delivered.append
        rx.on_data(data(100))
        assert delivered == []
        assert rx.buffered_bytes == 100
        rx.on_data(data(0))
        assert delivered == [100, 100]
        assert rx.buffered_bytes == 0

    def test_ooo_delay_measures_buffer_wait(self, sim, rx):
        rx.on_data(data(100))
        sim.schedule(0.5, rx.on_data, data(0))
        sim.run()
        # First delivered packet (dsn 0) waited 0; buffered one waited 0.5.
        assert rx.ooo_delays == [0.0, pytest.approx(0.5)]

    def test_multiple_gaps_drain_in_order(self, sim, rx):
        delivered = []
        rx.on_deliver = delivered.append
        rx.on_data(data(200))
        rx.on_data(data(100))
        rx.on_data(data(0))
        assert rx.expected_dsn == 300
        assert len(delivered) == 3

    def test_max_buffered_tracked(self, sim, rx):
        rx.on_data(data(100))
        rx.on_data(data(200))
        assert rx.max_buffered_bytes == 200

    def test_buffered_segments_counts(self, sim, rx):
        rx.on_data(data(100))
        rx.on_data(data(300))
        assert rx.buffered_segments == 2


class TestDuplicates:
    def test_old_duplicate_ignored(self, sim, rx):
        rx.on_data(data(0))
        rx.on_data(data(0))
        assert rx.duplicate_packets == 1
        assert rx.delivered_bytes == 100

    def test_buffered_duplicate_ignored(self, sim, rx):
        rx.on_data(data(100))
        rx.on_data(data(100))
        assert rx.duplicate_packets == 1
        assert rx.buffered_bytes == 100

    def test_reinjected_copy_after_delivery_ignored(self, sim, rx):
        rx.on_data(data(0))
        rx.on_data(data(100))
        rx.on_data(data(100))  # late original after reinjection delivered
        assert rx.delivered_bytes == 200
        assert rx.duplicate_packets == 1


class TestRecvWindow:
    def test_window_shrinks_with_buffered_data(self, sim):
        rx = MptcpReceiver(sim, recv_buffer_bytes=1000)
        rx.on_data(data(500, payload=400))
        assert rx.recv_window == 600

    def test_window_recovers_after_drain(self, sim):
        rx = MptcpReceiver(sim, recv_buffer_bytes=1000)
        rx.on_data(data(100, payload=400))
        rx.on_data(data(0))
        assert rx.recv_window == 1000

    def test_window_never_negative(self, sim):
        rx = MptcpReceiver(sim, recv_buffer_bytes=300)
        assert rx.on_data(data(100, payload=400)) is False
        assert rx.window_drops == 1
        assert rx.buffered_bytes == 0
        assert rx.recv_window == 300

    def test_rejects_nonpositive_buffer(self, sim):
        with pytest.raises(ValueError):
            MptcpReceiver(sim, recv_buffer_bytes=0)


class TestWindowOverflow:
    def test_stalled_gap_with_tiny_buffer_drops_instead_of_growing(self, sim):
        rx = MptcpReceiver(sim, recv_buffer_bytes=250)
        # DSN 0 never arrives: every out-of-order segment parks in the
        # buffer until capacity runs out, then gets dropped and counted.
        assert rx.on_data(data(100)) is True
        assert rx.on_data(data(200)) is True
        for dsn in range(300, 1000, 100):
            assert rx.on_data(data(dsn)) is False
        assert rx.buffered_bytes == 200
        assert rx.buffered_bytes <= rx.recv_buffer_bytes
        assert rx.window_drops == 7
        assert rx.recv_window == 50

    def test_in_order_delivery_ignores_buffer_capacity(self, sim):
        rx = MptcpReceiver(sim, recv_buffer_bytes=100)
        assert rx.on_data(data(0, payload=5000)) is True
        assert rx.delivered_bytes == 5000
        assert rx.window_drops == 0

    def test_dropped_segment_can_be_retransmitted_later(self, sim):
        rx = MptcpReceiver(sim, recv_buffer_bytes=150)
        assert rx.on_data(data(100)) is True
        assert rx.on_data(data(200)) is False  # no room yet
        assert rx.on_data(data(0)) is True  # gap fills, buffer drains
        assert rx.on_data(data(200)) is True  # retransmitted copy fits now
        assert rx.delivered_bytes == 300
        assert rx.window_drops == 1


class TestOverlapStraddle:
    def test_segment_straddling_delivery_edge_is_rejected(self, sim, rx):
        rx.on_data(data(0))
        with pytest.raises(ValueError, match="straddles the delivery edge"):
            rx.on_data(data(50, payload=100))

    def test_whole_stale_segment_is_a_plain_duplicate(self, sim, rx):
        rx.on_data(data(0))
        assert rx.on_data(data(0)) is True
        assert rx.duplicate_packets == 1


class TestLastArrival:
    def test_last_arrival_tracked_per_subflow(self, sim, rx):
        rx.on_data(data(0, sf=0))
        sim.schedule(1.0, rx.on_data, data(100, sf=1))
        sim.run()
        assert rx.last_arrival_by_subflow == {0: 0.0, 1: 1.0}

    def test_record_delays_can_be_disabled(self, sim):
        rx = MptcpReceiver(sim, record_delays=False)
        rx.on_data(data(0))
        assert rx.ooo_delays == []
        assert rx.delivered_bytes == 100
