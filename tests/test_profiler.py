"""Tests for the deterministic sim-profiler (repro.perf.profiler).

The two load-bearing guarantees:

* **zero-cost off** -- with ``PROFILER is None`` (the default) the
  engine takes its uninstrumented fast path and no profiler code runs;
* **byte-identity** -- profiling must never perturb simulated results:
  the same spec run with and without the profiler produces identical
  result dictionaries (the golden-digest suite in ``test_perf.py``
  guards the same property at sha256 granularity).
"""

import os

import pytest

from repro.apps.bulk import BulkDownloadSpec, run_bulk
from repro.net.profiles import lte_config, wifi_config
from repro.perf import profiler as _profiler
from repro.perf.profiler import SimProfiler, profile_enabled, profiling


def bulk_spec(seed=0, size=96 * 1024):
    return BulkDownloadSpec(
        scheduler="ecf",
        path_configs=(wifi_config(2.0), lte_config(8.6)),
        size=size,
        seed=seed,
    )


class TestZeroCostOff:
    def test_profiler_global_defaults_to_none(self):
        assert _profiler.PROFILER is None

    def test_profile_enabled_reads_env(self, monkeypatch):
        monkeypatch.delenv(_profiler.ENV_VAR, raising=False)
        assert not profile_enabled()
        monkeypatch.setenv(_profiler.ENV_VAR, "1")
        assert profile_enabled()
        monkeypatch.setenv(_profiler.ENV_VAR, "0")
        assert not profile_enabled()

    def test_runs_fine_with_profiler_off(self):
        result = run_bulk(bulk_spec())
        assert result.size == 96 * 1024
        assert result.completion_time > 0


class TestByteIdentity:
    def test_profiled_run_is_bit_identical(self):
        plain = run_bulk(bulk_spec(seed=3))
        with profiling():
            profiled = run_bulk(bulk_spec(seed=3))
        assert profiled.to_dict() == plain.to_dict()

    def test_profiled_run_matches_across_schedulers(self):
        for scheduler in ("ecf", "minrtt"):
            spec = BulkDownloadSpec(
                scheduler=scheduler,
                path_configs=(wifi_config(1.0), lte_config(8.6)),
                size=64 * 1024,
                seed=1,
            )
            plain = run_bulk(spec)
            with profiling():
                profiled = run_bulk(spec)
            assert profiled.to_dict() == plain.to_dict()


class TestAttribution:
    def test_components_and_hooks_observed(self):
        with profiling() as prof:
            run_bulk(bulk_spec())
        report = prof.report()
        assert report["runs"] >= 1
        assert report["sims_adopted"] >= 1
        assert report["run_wall_s"] > 0
        components = report["components"]
        for expected in ("engine.dispatch", "link.delivery"):
            assert expected in components, f"missing {expected}"
            assert components[expected]["calls"] > 0
        hot_spots = report["hot_spots"]
        for hook in ("scheduler.decision", "cc.update", "receiver.reassembly"):
            matching = [p for p in hot_spots if p.endswith(";" + hook)]
            assert matching, f"no hot-spot path for {hook}"
            assert sum(hot_spots[p]["calls"] for p in matching) > 0

    def test_hot_spots_nest_under_components(self):
        with profiling() as prof:
            run_bulk(bulk_spec())
        hot_spots = prof.report()["hot_spots"]
        assert any("scheduler.decision" in path for path in hot_spots)
        # Nested hooks are attributed beneath the component that was
        # dispatching when they fired, giving engine;<parent>;<hook> paths.
        assert any(path.count(";") >= 2 for path in hot_spots)

    def test_classify_uses_module_prefixes(self):
        prof = SimProfiler()

        class FakeLink:
            __module__ = "repro.net.link"

            def deliver(self):
                pass

        class Elsewhere:
            __module__ = "somewhere.else"

            def tick(self):
                pass

        assert prof.classify(FakeLink().deliver) == "link.delivery"
        assert prof.classify(Elsewhere().tick) == "other"


class TestCollapsed:
    def test_collapsed_stack_format(self):
        with profiling() as prof:
            run_bulk(bulk_spec())
        text = prof.collapsed()
        assert text
        for line in text.splitlines():
            path, weight = line.rsplit(" ", 1)
            assert path.split(";")[0] in ("engine", "outside")
            assert int(weight) > 0

    def test_empty_profiler_collapses_to_nothing(self):
        assert SimProfiler().collapsed() == ""


class TestPublish:
    def test_publish_fills_registry(self):
        from repro.obs.metrics import default_registry

        with profiling() as prof:
            run_bulk(bulk_spec())
        registry = default_registry()
        prof.publish(registry)
        calls = registry.get("repro_profile_component_calls")
        report = prof.report()
        for name, stats in report["components"].items():
            assert calls.value(component=name) == stats["calls"]
        histogram = registry.get("repro_profile_event_seconds")
        lines = histogram.samples()
        assert any("link.delivery" in line for line in lines)


class TestProfilingContext:
    def test_restores_previous_global(self):
        outer = SimProfiler()
        _profiler.PROFILER = outer
        try:
            with profiling() as inner:
                assert _profiler.PROFILER is inner
                assert inner is not outer
            assert _profiler.PROFILER is outer
        finally:
            _profiler.PROFILER = None

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with profiling():
                raise RuntimeError("boom")
        assert _profiler.PROFILER is None


class TestEnvVarName:
    def test_env_var_is_documented_name(self):
        assert _profiler.ENV_VAR == "REPRO_PROFILE"
        assert _profiler.ENV_VAR not in os.environ or True
