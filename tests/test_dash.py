"""Tests for the DASH stack: media model, ABR algorithms, player."""

import pytest

from repro.apps.dash.abr import (
    AbrInputs,
    BufferBasedAbr,
    FixedAbr,
    ThroughputAbr,
    make_abr,
)
from repro.apps.dash.media import (
    PAPER_REPRESENTATIONS,
    Representation,
    VideoManifest,
)
from repro.apps.dash.player import DashPlayer
from repro.apps.http import HttpSession
from repro.sim.trace import TraceRecorder
from tests.conftest import build_connection, drain


def inputs(buffer_level=20.0, throughput=None, startup=False):
    return AbrInputs(
        buffer_level=buffer_level,
        throughput_estimate_bps=throughput,
        last_representation=None,
        startup=startup,
    )


class TestMedia:
    def test_paper_representations_match_table1(self):
        rates = [round(r.bitrate_mbps, 2) for r in PAPER_REPRESENTATIONS]
        assert rates == [0.26, 0.64, 1.0, 1.6, 4.14, 8.47]

    def test_chunk_bytes(self):
        rep = Representation("x", 1e6)
        assert rep.chunk_bytes(5.0) == 625_000

    def test_manifest_chunk_count(self):
        assert VideoManifest(duration=20.0, chunk_duration=5.0).num_chunks == 4

    def test_manifest_validates_inputs(self):
        with pytest.raises(ValueError):
            VideoManifest(duration=0)
        with pytest.raises(ValueError):
            VideoManifest(representations=[])

    def test_manifest_requires_sorted_representations(self):
        reps = [Representation("b", 2e6), Representation("a", 1e6)]
        with pytest.raises(ValueError):
            VideoManifest(representations=reps)

    def test_best_under(self):
        manifest = VideoManifest()
        assert manifest.best_under(1.2e6).name == "360p"
        assert manifest.best_under(100.0).name == "144p"  # floor
        assert manifest.best_under(1e9).name == "1080p"

    def test_ideal_average_bitrate_caps_at_top(self):
        manifest = VideoManifest()
        assert manifest.ideal_average_bitrate(100e6) == pytest.approx(8.47e6)
        assert manifest.ideal_average_bitrate(1e6) == pytest.approx(1e6)


class TestAbr:
    def test_fixed_returns_its_representation(self):
        manifest = VideoManifest()
        rep = manifest.representations[2]
        assert FixedAbr(rep).choose(manifest, inputs()) is rep

    def test_fixed_rejects_foreign_representation(self):
        manifest = VideoManifest()
        with pytest.raises(ValueError):
            FixedAbr(Representation("alien", 5e6)).choose(manifest, inputs())

    def test_throughput_abr_scales_by_safety(self):
        manifest = VideoManifest()
        abr = ThroughputAbr(safety=0.85)
        # 0.85 * 5 Mbps = 4.25 -> 720p (4.14)
        assert abr.choose(manifest, inputs(throughput=5e6)).name == "720p"

    def test_throughput_abr_lowest_without_estimate(self):
        manifest = VideoManifest()
        assert ThroughputAbr().choose(manifest, inputs()).name == "144p"

    def test_throughput_abr_validates_safety(self):
        with pytest.raises(ValueError):
            ThroughputAbr(safety=0.0)

    def test_bba_low_buffer_picks_lowest(self):
        manifest = VideoManifest()
        abr = BufferBasedAbr(reservoir=5.0, cushion=10.0)
        assert abr.choose(manifest, inputs(buffer_level=3.0)).name == "144p"

    def test_bba_full_buffer_picks_highest(self):
        manifest = VideoManifest()
        abr = BufferBasedAbr(reservoir=5.0, cushion=10.0)
        assert abr.choose(manifest, inputs(buffer_level=20.0)).name == "1080p"

    def test_bba_mid_buffer_interpolates(self):
        manifest = VideoManifest()
        abr = BufferBasedAbr(reservoir=5.0, cushion=10.0)
        mid = abr.choose(manifest, inputs(buffer_level=10.0))
        assert mid.name not in ("144p", "1080p")

    def test_bba_monotone_in_buffer(self):
        manifest = VideoManifest()
        abr = BufferBasedAbr()
        rates = [
            abr.choose(manifest, inputs(buffer_level=b)).bitrate_bps
            for b in (2, 6, 9, 12, 16, 25)
        ]
        assert rates == sorted(rates)

    def test_bba_startup_uses_throughput(self):
        manifest = VideoManifest()
        abr = BufferBasedAbr()
        rep = abr.choose(manifest, inputs(buffer_level=0, throughput=2e6, startup=True))
        assert rep.name == "480p"  # 0.85 * 2 = 1.7 -> 1.6 Mbps tier

    def test_bba_startup_without_estimate_is_lowest(self):
        manifest = VideoManifest()
        rep = BufferBasedAbr().choose(manifest, inputs(startup=True))
        assert rep.name == "144p"

    def test_bba_optional_cap(self):
        manifest = VideoManifest()
        abr = BufferBasedAbr(cap_factor=1.0)
        rep = abr.choose(manifest, inputs(buffer_level=25.0, throughput=2e6))
        assert rep.bitrate_bps <= 2e6

    def test_make_abr_factory(self):
        manifest = VideoManifest()
        assert isinstance(make_abr("bba"), BufferBasedAbr)
        assert isinstance(make_abr("throughput"), ThroughputAbr)
        assert make_abr("fixed:360p", manifest).representation.name == "360p"
        with pytest.raises(ValueError):
            make_abr("fixed:999p", manifest)
        with pytest.raises(ValueError):
            make_abr("fixed:360p")  # needs manifest
        with pytest.raises(ValueError):
            make_abr("nope")


class TestPlayer:
    def make_player(self, sim, duration=30.0, abr=None, trace=None, **kw):
        conn = build_connection(sim, path_specs=((20.0, 0.01), (20.0, 0.02)))
        session = HttpSession(sim, conn)
        manifest = VideoManifest(duration=duration, chunk_duration=5.0)
        player = DashPlayer(sim, session, manifest, abr=abr, trace=trace, **kw)
        return player

    def test_player_downloads_all_chunks(self, sim):
        player = self.make_player(sim)
        player.start()
        drain(sim)
        assert player.finished
        assert len(player.metrics.chunks) == 6

    def test_start_twice_raises(self, sim):
        player = self.make_player(sim)
        player.start()
        with pytest.raises(RuntimeError):
            player.start()

    def test_threshold_validation(self, sim):
        with pytest.raises(ValueError):
            self.make_player(sim, max_buffer=10.0, start_threshold=20.0)

    def test_buffer_never_exceeds_max(self, sim):
        trace = TraceRecorder()
        player = self.make_player(sim, duration=60.0, trace=trace)
        player.start()
        drain(sim)
        assert all(v <= player.max_buffer + 1e-9 for v in trace.values("player.buffer"))

    def test_on_off_pattern_with_fast_network(self, sim):
        """Fast network + capped buffer forces OFF gaps between requests."""
        player = self.make_player(sim, duration=60.0)
        player.start()
        drain(sim)
        requests = [c.requested_at for c in player.metrics.chunks]
        gaps = [b - a for a, b in zip(requests, requests[1:])]
        # Once the buffer fills, requests are spaced about a chunk apart.
        assert max(gaps) > 2.0

    def test_average_bitrate_reflects_abr(self, sim):
        manifest = VideoManifest(duration=30.0)
        abr = FixedAbr(manifest.representations[0])
        player = self.make_player(sim, abr=abr)
        player.start()
        drain(sim)
        assert player.metrics.average_bitrate_bps == pytest.approx(0.26e6)

    def test_rebuffering_on_starved_network(self, sim):
        conn = build_connection(sim, path_specs=((0.2, 0.05),))
        session = HttpSession(sim, conn)
        manifest = VideoManifest(duration=30.0, chunk_duration=5.0)
        player = DashPlayer(
            sim, session, manifest,
            abr=FixedAbr(manifest.representations[2]),  # 1 Mbps on 0.2 Mbps
        )
        player.start()
        drain(sim, limit=800.0)
        assert player.metrics.rebuffer_events > 0
        assert player.metrics.rebuffer_time > 0

    def test_download_trace_recorded(self, sim):
        trace = TraceRecorder()
        player = self.make_player(sim, trace=trace)
        player.start()
        drain(sim)
        downloads = trace.values("player.download_bytes")
        assert downloads == sorted(downloads)
        assert downloads[-1] == player.downloaded_bytes

    def test_startup_ends_when_playback_begins(self, sim):
        player = self.make_player(sim, duration=60.0)
        player.start()
        drain(sim)
        assert not player.startup
        assert player.metrics.startup_completed_at is not None

    def test_chunk_throughputs_positive(self, sim):
        player = self.make_player(sim)
        player.start()
        drain(sim)
        assert all(t > 0 for t in player.metrics.chunk_throughputs_bps())
