"""Tests for the link model: serialization, queueing, drops, loss."""

import math
import random

import pytest

from repro.net.link import Link
from repro.net.packet import Packet


def make_link(sim, rate_bps=1e6, delay=0.01, queue_bytes=10_000, **kw):
    return Link(sim, rate_bps, delay, queue_bytes, **kw)


class TestValidation:
    def test_rejects_nonpositive_rate(self, sim):
        with pytest.raises(ValueError):
            make_link(sim, rate_bps=0)

    def test_rejects_negative_delay(self, sim):
        with pytest.raises(ValueError):
            make_link(sim, delay=-1)

    def test_rejects_nonpositive_queue(self, sim):
        with pytest.raises(ValueError):
            make_link(sim, queue_bytes=0)

    def test_rejects_invalid_loss_rate(self, sim):
        with pytest.raises(ValueError):
            make_link(sim, loss_rate=1.5, rng=random.Random(0))

    def test_loss_requires_rng(self, sim):
        with pytest.raises(ValueError):
            make_link(sim, loss_rate=0.1)

    @pytest.mark.parametrize("rate", [0, -1.0, math.inf, math.nan])
    def test_constructor_rejects_bad_rates(self, sim, rate):
        with pytest.raises(ValueError):
            make_link(sim, rate_bps=rate)

    @pytest.mark.parametrize("rate", [0, -5e6, math.inf, math.nan])
    def test_set_rate_rejects_bad_rates(self, sim, rate):
        link = make_link(sim)
        with pytest.raises(ValueError):
            link.set_rate(rate)
        assert link.rate_bps == 1e6  # unchanged after the rejected update

    def test_set_rate_accepts_finite_positive(self, sim):
        link = make_link(sim)
        link.set_rate(2.5e6)
        assert link.rate_bps == 2.5e6


class TestTiming:
    def test_delivery_time_is_serialization_plus_propagation(self, sim):
        link = make_link(sim, rate_bps=1e6, delay=0.05)
        arrivals = []
        link.send(Packet(size=1250), lambda p: arrivals.append(sim.now))
        sim.run()
        # 1250 bytes at 1 Mbps = 10 ms, plus 50 ms propagation.
        assert arrivals == [pytest.approx(0.06)]

    def test_back_to_back_packets_serialize_sequentially(self, sim):
        link = make_link(sim, rate_bps=1e6, delay=0.0)
        arrivals = []
        for _ in range(3):
            link.send(Packet(size=1250), lambda p: arrivals.append(sim.now))
        sim.run()
        assert arrivals == [pytest.approx(0.01), pytest.approx(0.02), pytest.approx(0.03)]

    def test_rate_change_applies_to_next_transmission(self, sim):
        link = make_link(sim, rate_bps=1e6, delay=0.0)
        arrivals = []
        link.send(Packet(size=1250), lambda p: arrivals.append(sim.now))
        link.send(Packet(size=1250), lambda p: arrivals.append(sim.now))
        link.set_rate(2e6)  # second packet transmits at the new rate
        sim.run()
        assert arrivals[0] == pytest.approx(0.01)
        assert arrivals[1] == pytest.approx(0.015)

    def test_idle_link_transmits_immediately(self, sim):
        link = make_link(sim, rate_bps=1e6, delay=0.0)
        arrivals = []
        link.send(Packet(size=1250), lambda p: arrivals.append(sim.now))
        sim.run()
        link.send(Packet(size=1250), lambda p: arrivals.append(sim.now))
        sim.run()
        assert arrivals[1] == pytest.approx(arrivals[0] + 0.01)

    def test_transit_estimate(self, sim):
        link = make_link(sim, rate_bps=1e6, delay=0.05)
        assert link.transit_estimate(1250) == pytest.approx(0.06)

    def test_transit_estimate_infinite_while_down(self, sim):
        link = make_link(sim)
        link.set_down()
        assert link.transit_estimate(1250) == math.inf

    def test_transit_estimate_restored_after_outage(self, sim):
        link = make_link(sim, rate_bps=1e6, delay=0.05)
        link.set_down()
        link.set_down(False)
        assert link.transit_estimate(1250) == pytest.approx(0.06)


class TestQueueing:
    def test_full_queue_drops_packet(self, sim):
        link = make_link(sim, queue_bytes=2500)
        delivered = []
        # First begins transmission; next two fill the 2500-byte queue.
        for _ in range(3):
            assert link.send(Packet(size=1250), lambda p: delivered.append(p))
        # Fourth does not fit.
        assert not link.send(Packet(size=1250), lambda p: delivered.append(p))
        sim.run()
        assert len(delivered) == 3
        assert link.stats.packets_dropped_queue == 1

    def test_queue_drains_in_fifo_order(self, sim):
        link = make_link(sim, delay=0.0)
        order = []
        for i in range(4):
            link.send(Packet(size=100, seq=i), lambda p: order.append(p.seq))
        sim.run()
        assert order == [0, 1, 2, 3]

    def test_queued_bytes_tracks_waiting_packets(self, sim):
        link = make_link(sim)
        link.send(Packet(size=1000), lambda p: None)  # transmitting
        link.send(Packet(size=1000), lambda p: None)  # queued
        assert link.queued_bytes == 1000
        assert link.queue_depth == 1

    def test_busy_flag(self, sim):
        link = make_link(sim)
        assert not link.busy
        link.send(Packet(size=100), lambda p: None)
        assert link.busy
        sim.run()
        assert not link.busy

    def test_on_drop_callback_fires(self, sim):
        link = make_link(sim, queue_bytes=100)
        dropped = []
        link.on_drop = dropped.append
        link.send(Packet(size=100), lambda p: None)
        link.send(Packet(size=101), lambda p: None)  # too big for queue
        assert len(dropped) == 1


class TestLoss:
    def test_zero_loss_delivers_everything(self, sim):
        link = make_link(sim, queue_bytes=1_000_000)
        delivered = []
        for _ in range(50):
            link.send(Packet(size=100), lambda p: delivered.append(p))
        sim.run()
        assert len(delivered) == 50

    def test_random_loss_drops_roughly_at_rate(self, sim):
        link = make_link(
            sim, queue_bytes=10_000_000, loss_rate=0.3, rng=random.Random(42)
        )
        delivered = []
        n = 2000
        for _ in range(n):
            link.send(Packet(size=100), lambda p: delivered.append(p))
        sim.run()
        drop_fraction = link.stats.packets_dropped_random / n
        assert 0.25 < drop_fraction < 0.35
        assert len(delivered) + link.stats.packets_dropped_random == n

    def test_loss_returns_false_from_send(self, sim):
        link = make_link(sim, loss_rate=0.999999, rng=random.Random(1), queue_bytes=10_000)
        assert link.send(Packet(size=100), lambda p: None) is False


class TestConservation:
    def test_every_packet_delivered_or_dropped(self, sim):
        link = make_link(sim, queue_bytes=3000, loss_rate=0.1, rng=random.Random(7))
        delivered = []
        n = 500
        for _ in range(n):
            link.send(Packet(size=500), lambda p: delivered.append(p))
            sim.run(until=sim.now + 0.001)
        sim.run()
        stats = link.stats
        assert stats.packets_in == n
        assert len(delivered) == stats.packets_delivered
        assert stats.packets_delivered + stats.packets_dropped == n

    def test_utilization_bounded(self, sim):
        link = make_link(sim, rate_bps=1e6, delay=0.0, queue_bytes=1_000_000)
        for _ in range(100):
            link.send(Packet(size=1250), lambda p: None)
        sim.run()
        assert 0.0 < link.stats.utilization(sim.now) <= 1.0

    def test_bytes_delivered_counts_wire_bytes(self, sim):
        link = make_link(sim)
        link.send(Packet(size=700), lambda p: None)
        sim.run()
        assert link.stats.bytes_delivered == 700
