"""Edge cases of the DASH player and HTTP interplay."""


from repro.apps.dash.abr import FixedAbr, ThroughputAbr
from repro.apps.dash.media import VideoManifest
from repro.apps.dash.player import DashPlayer
from repro.apps.http import HttpSession
from repro.sim.trace import TraceRecorder
from tests.conftest import build_connection, drain


def build_player(sim, duration=30.0, rate=20.0, **kw):
    conn = build_connection(sim, path_specs=((rate, 0.01), (rate, 0.02)))
    session = HttpSession(sim, conn)
    manifest = VideoManifest(duration=duration, chunk_duration=5.0)
    return DashPlayer(sim, session, manifest, **kw), manifest


class TestRebufferingLifecycle:
    def test_rebuffer_resumes_at_threshold(self, sim):
        player, manifest = build_player(sim, duration=60.0, rate=0.45)
        player.abr = FixedAbr(manifest.representations[2])  # 1.0 Mbps > 2x0.45
        player.start()
        drain(sim, limit=900.0)
        assert player.metrics.rebuffer_events >= 1
        # Playback eventually consumed the whole video despite stalls.
        assert player.finished

    def test_rebuffer_time_accumulates_only_while_stalled(self, sim):
        player, manifest = build_player(sim, duration=30.0)
        player.abr = FixedAbr(manifest.representations[0])
        player.start()
        drain(sim)
        assert player.metrics.rebuffer_time == 0.0
        assert player.metrics.rebuffer_events == 0


class TestStartupLifecycle:
    def test_playback_starts_at_threshold(self, sim):
        trace = TraceRecorder()
        player, manifest = build_player(sim, duration=60.0, trace=trace,
                                        start_threshold=10.0)
        player.start()
        drain(sim)
        t0 = player.metrics.startup_completed_at
        assert t0 is not None
        # At the moment playback began, the buffer held >= threshold.
        buffered = [v for t, v in trace.series("player.buffer") if t <= t0]
        assert buffered[-1] >= 10.0 - 1e-9

    def test_short_video_finishes_even_below_threshold(self, sim):
        player, manifest = build_player(sim, duration=5.0)
        player.start()
        drain(sim)
        assert player.finished
        assert len(player.metrics.chunks) == 1


class TestAbrFeedback:
    def test_throughput_abr_climbs_with_capacity(self, sim):
        player, manifest = build_player(sim, duration=60.0, rate=30.0,
                                        abr=ThroughputAbr())
        player.start()
        drain(sim)
        reps = [c.representation.name for c in player.metrics.chunks]
        # Starts conservative, ends at the top tier.
        assert reps[0] == "144p"
        assert reps[-1] == "1080p"

    def test_recent_throughputs_fed_to_abr(self, sim):
        seen = {}

        class SpyAbr(ThroughputAbr):
            def choose(self, manifest, inputs):
                seen["history"] = inputs.recent_throughputs_bps
                return super().choose(manifest, inputs)

        player, manifest = build_player(sim, duration=30.0, abr=SpyAbr())
        player.start()
        drain(sim)
        assert len(seen["history"]) >= 1

    def test_steady_chunks_fallback_without_startup(self, sim):
        player, manifest = build_player(sim, duration=10.0)
        player.start()
        drain(sim)
        # Very short session: steady set falls back to all chunks.
        assert player.metrics.steady_chunks()


class TestMetricsConsistency:
    def test_downloaded_bytes_match_chunk_sizes(self, sim):
        player, manifest = build_player(sim)
        player.start()
        drain(sim)
        assert player.downloaded_bytes == sum(c.size for c in player.metrics.chunks)

    def test_chunk_indices_sequential(self, sim):
        player, manifest = build_player(sim)
        player.start()
        drain(sim)
        assert [c.index for c in player.metrics.chunks] == list(
            range(manifest.num_chunks)
        )

    def test_average_throughput_positive(self, sim):
        player, manifest = build_player(sim)
        player.start()
        drain(sim)
        assert player.metrics.average_throughput_bps > 0
        assert player.metrics.steady_average_throughput_bps > 0
