"""Failure-injection tests: link outages and wireless jitter.

A production-quality transport must survive an interface dying mid-flow
(recovering through the other path and, after the outage, via RTO) and
must tolerate within-path reordering from MAC-layer jitter without
collapsing into spurious retransmissions.
"""

import random

import pytest

from repro.net.link import Link
from repro.net.packet import Packet
from repro.net.path import Path
from repro.core.registry import make_scheduler
from repro.mptcp.connection import ConnectionConfig, MptcpConnection
from tests.conftest import build_connection, drain


class TestLinkOutage:
    def test_down_link_drops_arrivals(self, sim):
        link = Link(sim, 1e6, 0.01, 10_000)
        link.set_down()
        delivered = []
        assert not link.send(Packet(size=100), delivered.append)
        sim.run()
        assert delivered == []
        assert link.stats.packets_dropped_outage == 1

    def test_mid_flight_packet_lost_on_outage(self, sim):
        link = Link(sim, 1e6, 0.05, 10_000)
        delivered = []
        link.send(Packet(size=1250), delivered.append)  # 10 ms serialization
        sim.schedule(0.005, link.set_down)  # down before tx completes
        sim.run()
        assert delivered == []
        assert link.stats.packets_dropped_outage == 1

    def test_link_recovers_after_up(self, sim):
        link = Link(sim, 1e6, 0.01, 10_000)
        link.set_down()
        link.set_down(False)
        delivered = []
        assert link.send(Packet(size=100), delivered.append)
        sim.run()
        assert len(delivered) == 1

    def test_mptcp_survives_secondary_outage(self, sim):
        """Kill the secondary path mid-transfer: everything still arrives."""
        conn = build_connection(sim)
        secondary = conn.subflows[1].path
        conn.write(3_000_000)
        sim.schedule(0.5, secondary.forward.set_down)
        sim.schedule(0.5, secondary.reverse.set_down)
        drain(sim, limit=600.0)
        assert conn.delivered_bytes == 3_000_000
        # Recovery went through RTO on the dead subflow.
        assert conn.subflows[1].stats.rto_events >= 1

    def test_mptcp_survives_transient_primary_outage(self, sim):
        conn = build_connection(sim)
        primary = conn.subflows[0].path
        conn.write(3_000_000)
        sim.schedule(0.3, primary.forward.set_down)
        sim.schedule(2.3, primary.forward.set_down, False)
        drain(sim, limit=600.0)
        assert conn.delivered_bytes == 3_000_000
        # The primary came back and carried traffic again afterwards.
        assert conn.subflows[0].stats.last_data_sent_at > 2.3

    def test_total_outage_then_recovery(self, sim):
        """Both paths down: the connection stalls, then fully recovers."""
        conn = build_connection(sim)
        conn.write(1_000_000)
        for sf in conn.subflows:
            sim.schedule(0.2, sf.path.forward.set_down)
            sim.schedule(3.0, sf.path.forward.set_down, False)
        drain(sim, limit=600.0)
        assert conn.delivered_bytes == 1_000_000


class TestJitter:
    def test_jitter_requires_rng(self, sim):
        with pytest.raises(ValueError):
            Link(sim, 1e6, 0.01, 10_000, jitter=0.01)

    def test_jitter_rejects_negative(self, sim):
        with pytest.raises(ValueError):
            Link(sim, 1e6, 0.01, 10_000, jitter=-1.0, rng=random.Random(0))

    def test_jitter_spreads_delivery_times(self, sim):
        link = Link(sim, 100e6, 0.01, 1_000_000, jitter=0.05, rng=random.Random(1))
        arrivals = []
        for _ in range(50):
            link.send(Packet(size=100), lambda p: arrivals.append(sim.now))
        sim.run()
        spread = max(arrivals) - min(arrivals)
        assert spread > 0.01  # far larger than serialization alone

    def test_jitter_can_reorder_within_link(self, sim):
        link = Link(sim, 100e6, 0.001, 1_000_000, jitter=0.05, rng=random.Random(2))
        order = []
        for index in range(50):
            link.send(Packet(size=100, seq=index), lambda p: order.append(p.seq))
        sim.run()
        assert order != sorted(order)

    def test_transfer_completes_over_jittery_path(self, sim):
        rng = random.Random(3)
        forward = Link(sim, 10e6, 0.02, 300_000, jitter=0.01, rng=rng)
        reverse = Link(sim, 10e6, 0.02, 300_000)
        path = Path("jittery", forward, reverse)
        conn = MptcpConnection(
            sim, [path], make_scheduler("minrtt"),
            config=ConnectionConfig(handshake_delays=False),
        )
        conn.write(2_000_000)
        drain(sim, limit=300.0)
        assert conn.delivered_bytes == 2_000_000
        # Some spurious retransmissions are expected (reordering beyond
        # the dupack threshold), but they must stay a small fraction.
        sf = conn.subflows[0]
        assert sf.stats.segments_retransmitted < sf.stats.segments_sent * 0.2
