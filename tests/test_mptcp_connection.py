"""Tests for the MPTCP meta-connection."""

import pytest

from repro.core.registry import make_scheduler
from repro.mptcp.connection import MptcpConnection
from tests.conftest import build_connection, build_path, drain


class TestBasics:
    def test_requires_at_least_one_path(self, sim):
        with pytest.raises(ValueError):
            MptcpConnection(sim, [], make_scheduler("minrtt"))

    def test_write_validates_size(self, sim):
        conn = build_connection(sim)
        with pytest.raises(ValueError):
            conn.write(0)

    def test_two_path_transfer_completes(self, sim):
        conn = build_connection(sim)
        conn.write(3_000_000)
        drain(sim)
        assert conn.delivered_bytes == 3_000_000

    def test_both_subflows_carry_traffic(self, sim):
        conn = build_connection(sim)
        conn.write(5_000_000)
        drain(sim)
        by_subflow = conn.payload_sent_by_subflow()
        assert all(v > 0 for v in by_subflow.values())
        assert sum(by_subflow.values()) >= 5_000_000

    def test_delivery_is_gapless_and_ordered(self, sim):
        conn = build_connection(sim)
        total = 2_000_000
        seen = []
        conn.set_deliver_callback(seen.append)
        conn.write(total)
        drain(sim)
        assert sum(seen) == total
        # The receiver's expected DSN equals the byte total.
        assert conn.receiver.expected_dsn == total

    def test_scheduler_attached_once(self, sim):
        scheduler = make_scheduler("minrtt")
        paths = [build_path(sim)]
        MptcpConnection(sim, paths, scheduler)
        with pytest.raises(RuntimeError):
            MptcpConnection(sim, paths, scheduler)

    def test_subflow_by_path_name(self, sim):
        conn = build_connection(sim)
        assert conn.subflow_by_path_name("p0") is conn.subflows[0]
        with pytest.raises(KeyError):
            conn.subflow_by_path_name("nope")

    def test_unassigned_bytes_exposed_for_ecf(self, sim):
        conn = build_connection(sim)
        conn.write(10_000_000)
        sim.run(until=0.0001)
        # IW x 2 subflows assigned; the rest still queued.
        assert conn.unassigned_bytes > 9_000_000


class TestSendWindow:
    def test_outstanding_bounded_by_send_window(self, sim):
        conn = build_connection(sim, send_window_bytes=100_000)
        conn.write(10_000_000)
        sim.run(until=5.0)
        assert conn.bytes_outstanding <= 100_000

    def test_window_limited_predicate(self, sim):
        conn = build_connection(sim, send_window_bytes=20_000)
        assert not conn.window_limited()
        conn.write(10_000_000)
        sim.run(until=0.001)
        assert conn.window_limited()

    def test_effective_window_respects_peer(self, sim):
        conn = build_connection(sim)
        conn.peer_recv_window = 5_000
        assert conn.effective_send_window == 5_000

    def test_transfer_completes_despite_small_window(self, sim):
        conn = build_connection(sim, send_window_bytes=50_000)
        conn.write(1_000_000)
        drain(sim)
        assert conn.delivered_bytes == 1_000_000


class TestPenalizationMechanism:
    def heterogeneous_conn(self, sim, **kw):
        # Slow path with fat pipe queue + tiny receive buffer encourages
        # receive-window blocking behind slow-path segments.
        return build_connection(
            sim,
            path_specs=((10.0, 0.005), (0.5, 0.3)),
            recv_buffer_bytes=120_000,
            send_window_bytes=4_000_000,
            **kw,
        )

    def test_reinjection_triggers_on_recv_window_blocking(self, sim):
        conn = self.heterogeneous_conn(sim, scheduler_name="roundrobin")
        conn.write(3_000_000)
        drain(sim, limit=600.0)
        assert conn.delivered_bytes == 3_000_000
        assert conn.reinjections > 0

    def test_penalization_halves_slow_subflow(self, sim):
        conn = self.heterogeneous_conn(sim, scheduler_name="roundrobin")
        conn.write(3_000_000)
        drain(sim, limit=600.0)
        assert conn.subflows[1].stats.penalizations > 0

    def test_penalization_can_be_disabled(self, sim):
        conn = self.heterogeneous_conn(
            sim, scheduler_name="roundrobin", penalization_enabled=False
        )
        conn.write(3_000_000)
        drain(sim, limit=600.0)
        assert conn.reinjections == 0
        assert conn.delivered_bytes == 3_000_000

    def test_duplicate_reinjection_not_double_counted(self, sim):
        conn = self.heterogeneous_conn(sim, scheduler_name="roundrobin")
        conn.write(2_000_000)
        drain(sim, limit=600.0)
        # Receiver ignores duplicates; delivered bytes exact.
        assert conn.delivered_bytes == 2_000_000


class TestCallbacks:
    def test_set_deliver_callback_rewires(self, sim):
        conn = build_connection(sim)
        first, second = [], []
        conn.set_deliver_callback(first.append)
        conn.set_deliver_callback(second.append)
        conn.write(1448)
        drain(sim)
        assert not first
        assert sum(second) == 1448

    def test_scheduler_wait_counter(self, sim):
        conn = build_connection(sim, scheduler_name="ecf")
        conn.write(5_000_000)
        drain(sim)
        assert conn.scheduler_waits >= 0  # counter exists and is consistent
        assert conn.delivered_bytes == 5_000_000
