"""Tests for the HTTP session and bulk-download harness."""

import pytest

from repro.apps.bulk import run_bulk_download
from repro.apps.http import HttpSession
from repro.net.profiles import lte_config, wifi_config
from tests.conftest import build_connection, drain


@pytest.fixture
def session(sim):
    conn = build_connection(sim)
    return HttpSession(sim, conn)


class TestHttpSession:
    def test_get_delivers_full_response(self, sim, session):
        done = []
        session.get(100_000, done.append)
        drain(sim)
        assert len(done) == 1
        assert done[0].size == 100_000

    def test_completion_time_includes_request_latency(self, sim, session):
        done = []
        session.get(1448, done.append)
        drain(sim)
        result = done[0]
        # One-way request + handshake-free response round trip >= base RTT.
        assert result.completion_time >= 0.02
        assert result.issued_at == 0.0
        # A single-segment response arrives all at once.
        assert result.completed_at >= result.first_byte_at > result.issued_at

    def test_sequential_gets_complete_in_order(self, sim, session):
        order = []
        session.get(50_000, lambda r: order.append(r.index))
        session.get(50_000, lambda r: order.append(r.index))
        drain(sim)
        assert order == [0, 1]

    def test_get_validates_size(self, sim, session):
        with pytest.raises(ValueError):
            session.get(0)

    def test_results_recorded(self, sim, session):
        session.get(10_000)
        session.get(20_000)
        drain(sim)
        assert [r.size for r in session.results] == [10_000, 20_000]

    def test_outstanding_requests_counter(self, sim, session):
        session.get(10_000)
        assert session.outstanding_requests == 1
        drain(sim)
        assert session.outstanding_requests == 0

    def test_observers_fire_for_every_get(self, sim, session):
        seen = []
        session.observers.append(lambda r: seen.append(r.index))
        session.get(10_000)
        session.get(10_000)
        drain(sim)
        assert seen == [0, 1]

    def test_throughput_property(self, sim, session):
        done = []
        session.get(100_000, done.append)
        drain(sim)
        assert done[0].throughput_bps > 0

    def test_pipelined_gets_all_complete(self, sim, session):
        done = []
        for _ in range(5):
            session.get(30_000, done.append)
        drain(sim)
        assert len(done) == 5


class TestBulkDownload:
    PATHS = (wifi_config(2.0), lte_config(8.6))

    def test_download_completes(self):
        result = run_bulk_download("minrtt", self.PATHS, 256 * 1024)
        assert result.completion_time > 0
        assert sum(result.payload_by_path.values()) >= 256 * 1024

    def test_larger_files_take_longer(self):
        small = run_bulk_download("minrtt", self.PATHS, 64 * 1024)
        large = run_bulk_download("minrtt", self.PATHS, 1024 * 1024)
        assert large.completion_time > small.completion_time

    def test_all_schedulers_complete(self):
        for name in ("minrtt", "ecf", "blest", "daps"):
            result = run_bulk_download(name, self.PATHS, 128 * 1024)
            assert result.scheduler == name
            assert result.completion_time > 0

    def test_small_transfer_mostly_on_primary(self):
        """Secondary joins a handshake later: tiny objects ride WiFi."""
        result = run_bulk_download("minrtt", self.PATHS, 16 * 1024)
        assert result.payload_by_path["wifi"] >= result.payload_by_path["lte"]

    def test_timeout_raises(self):
        slow = (wifi_config(0.3),)
        with pytest.raises(RuntimeError):
            run_bulk_download("minrtt", slow, 10_000_000, timeout=1.0)

    def test_deterministic_given_seed(self):
        a = run_bulk_download("ecf", self.PATHS, 256 * 1024, seed=5)
        b = run_bulk_download("ecf", self.PATHS, 256 * 1024, seed=5)
        assert a.completion_time == b.completion_time

    def test_throughput_property(self):
        result = run_bulk_download("minrtt", self.PATHS, 512 * 1024)
        assert result.throughput_bps == pytest.approx(
            512 * 1024 * 8 / result.completion_time
        )
