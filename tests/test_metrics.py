"""Tests for the statistics helpers and runtime collectors."""

import pytest

from repro.metrics.collectors import PeriodicSampler, ThroughputMeter
from repro.metrics.stats import (
    ccdf,
    cdf,
    fraction_at_least,
    fraction_at_most,
    mean,
    percentile,
    stdev,
    summarize,
)
from repro.sim.trace import TraceRecorder


class TestStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_stdev_two_points(self):
        assert stdev([1.0, 3.0]) == pytest.approx(2.0 ** 0.5)

    def test_stdev_single_sample_zero(self):
        assert stdev([5.0]) == 0.0

    def test_percentile_bounds(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 4.0

    def test_percentile_interpolates(self):
        assert percentile([1.0, 2.0], 50) == pytest.approx(1.5)

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 150)

    def test_cdf_shape(self):
        points = cdf([3.0, 1.0, 2.0])
        assert points == [(1.0, pytest.approx(1 / 3)), (2.0, pytest.approx(2 / 3)), (3.0, 1.0)]

    def test_cdf_merges_duplicates(self):
        points = cdf([1.0, 1.0, 2.0])
        assert points == [(1.0, pytest.approx(2 / 3)), (2.0, 1.0)]

    def test_cdf_empty(self):
        assert cdf([]) == []

    def test_ccdf_complements_cdf(self):
        data = [1.0, 2.0, 3.0, 4.0]
        for (x1, p), (x2, q) in zip(cdf(data), ccdf(data)):
            assert x1 == x2
            assert p + q == pytest.approx(1.0)

    def test_fraction_at_most(self):
        assert fraction_at_most([1, 2, 3, 4], 2) == 0.5
        assert fraction_at_most([], 1) == 0.0

    def test_fraction_at_least(self):
        assert fraction_at_least([1, 2, 3, 4], 3) == 0.5

    def test_summary_fields(self):
        s = summarize([1.0, 2.0, 3.0, 4.0, 100.0])
        assert s.count == 5
        assert s.minimum == 1.0
        assert s.maximum == 100.0
        assert s.median == 3.0
        assert s.mean == pytest.approx(22.0)

    def test_summary_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_summary_str(self):
        assert "n=3" in str(summarize([1.0, 2.0, 3.0]))


class TestPeriodicSampler:
    def test_samples_at_period(self, sim):
        trace = TraceRecorder()
        sampler = PeriodicSampler(sim, trace, period=0.5)
        value = {"x": 0.0}
        sampler.add("x", lambda: value["x"])
        sampler.start(until=2.0)
        sim.schedule(0.75, lambda: value.update(x=5.0))
        sim.run(until=3.0)
        samples = trace.series("x")
        assert [t for t, _ in samples] == [0.0, 0.5, 1.0, 1.5, 2.0]
        assert samples[0][1] == 0.0
        assert samples[2][1] == 5.0

    def test_period_validation(self, sim):
        with pytest.raises(ValueError):
            PeriodicSampler(sim, TraceRecorder(), period=0.0)

    def test_double_start_raises(self, sim):
        sampler = PeriodicSampler(sim, TraceRecorder(), period=1.0)
        sampler.start()
        with pytest.raises(RuntimeError):
            sampler.start()


class TestThroughputMeter:
    def test_average_throughput(self, sim):
        meter = ThroughputMeter(sim)
        meter.on_bytes(1000)
        sim.schedule(1.0, meter.on_bytes, 1000)
        sim.run()
        # 2000 bytes over the 1 s between first and last byte.
        assert meter.average_throughput_bps() == pytest.approx(16_000.0)

    def test_average_with_explicit_elapsed(self, sim):
        meter = ThroughputMeter(sim)
        meter.on_bytes(1000)
        assert meter.average_throughput_bps(elapsed=2.0) == pytest.approx(4000.0)

    def test_no_bytes_is_zero(self, sim):
        assert ThroughputMeter(sim).average_throughput_bps() == 0.0

    def test_interval_marks(self, sim):
        meter = ThroughputMeter(sim)
        meter.mark()
        meter.on_bytes(1250)
        sim.schedule(1.0, meter.mark)
        sim.run()
        assert meter.interval_throughput_bps() == [pytest.approx(10_000.0)]
