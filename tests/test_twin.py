"""Counterfactual twin runs: fork equivalence and regret reporting."""

import json
from pathlib import Path

import pytest

from repro.apps.bulk import BulkDownloadSpec, run_bulk
from repro.experiments import twin
from repro.net.profiles import lte_config, wifi_config
from repro.obs.timeline import (
    counterfactual_spans,
    twin_timeline_document,
    validate_trace_events,
)

GOLDEN = json.loads(
    (Path(__file__).parent / "data" / "golden_perf_digests.json").read_text()
)

PATHS = (wifi_config(1.0), lte_config(8.6))

#: The two golden workloads the twin world builder can reproduce
#: byte-for-byte (the exact specs of tests/test_perf.py's golden suite).
GOLDEN_SPECS = {
    "bulk_ecf": BulkDownloadSpec(
        scheduler="ecf", path_configs=PATHS, size=256_000, seed=3),
    "bulk_minrtt": BulkDownloadSpec(
        scheduler="minrtt", path_configs=PATHS, size=256_000, seed=3),
}


def _small_spec(scheduler="ecf", size=96_000, seed=3):
    return BulkDownloadSpec(
        scheduler=scheduler, path_configs=PATHS, size=size, seed=seed)


class TestWorldBuilder:
    """The closure-free twin world must be indistinguishable from run_bulk."""

    @pytest.mark.parametrize("name", sorted(GOLDEN_SPECS))
    def test_straight_run_matches_golden_digest(self, name):
        world = twin.build_world(GOLDEN_SPECS[name])
        result = world.run_to_completion()
        assert twin.result_digest(result) == GOLDEN[name]

    def test_matches_run_bulk_exactly(self):
        spec = _small_spec()
        via_twin = twin.build_world(spec).run_to_completion()
        via_bulk = run_bulk(spec)
        assert via_twin.to_dict() == via_bulk.to_dict()

    def test_incomplete_download_raises(self):
        spec = BulkDownloadSpec(
            scheduler="ecf", path_configs=PATHS, size=50_000_000, seed=3,
            timeout=1.0)
        world = twin.build_world(spec)
        with pytest.raises(RuntimeError, match="did not complete"):
            world.run_to_completion()


class TestForkEquivalence:
    """Forcing the *recorded* choice must replay byte-identically.

    Run on two of the six golden workloads: ``bulk_ecf`` exercises the
    decision-forcing path, ``bulk_minrtt`` the no-decision restore path.
    """

    @pytest.mark.parametrize("name", sorted(GOLDEN_SPECS))
    def test_golden_workload_fork_is_byte_identical(self, name):
        report = twin.verify_fork_equivalence(
            GOLDEN_SPECS[name], checkpoint_every=500)
        assert report["ok"], (
            f"fork of {name} diverged: {report['baseline_digest']} != "
            f"{report['replay_digest']}")
        # The straight run itself still matches the committed golden.
        assert report["baseline_digest"] == GOLDEN[name]
        if name == "bulk_ecf":
            assert report["decisions_total"] > 0
        else:
            assert report["decisions_total"] == 0

    def test_every_checkpoint_restores_to_the_same_future(self):
        recording = twin.record(_small_spec(), checkpoint_every=300)
        assert len(recording.checkpoints) >= 2
        for count, snap in recording.checkpoints:
            world = twin.fork(snap)
            world["sim"].run(until=recording.spec.timeout)
            replayed = twin.finish(
                recording.spec, world["conn"], world["recorder"])
            assert twin.result_digest(replayed) == recording.digest, (
                f"checkpoint at decision count {count} diverged")


class TestRecording:
    def test_checkpoint_before_picks_latest_preceding(self):
        recording = twin.record(_small_spec(), checkpoint_every=150)
        counts = [count for count, _ in recording.checkpoints]
        assert counts == sorted(counts)
        last = recording.checkpoints[-1]
        # An index >= the final count maps to the final checkpoint ...
        assert recording.checkpoint_before(last[0] + 10) is last[1]
        # ... and index 0 to the t=0 world.
        assert recording.checkpoint_before(0) is recording.checkpoints[0][1]

    def test_decisions_are_logged_in_index_order(self):
        recording = twin.record(_small_spec(), checkpoint_every=500)
        times = [d.t for d in recording.decisions]
        assert times == sorted(times)
        assert all(not d.forced for d in recording.decisions)


class TestTwinReport:
    @pytest.fixture(scope="class")
    def report(self):
        return twin.twin_report(
            _small_spec(), checkpoint_every=500, max_decisions=5)

    def test_report_shape(self, report):
        assert report["kind"] == "twin_report"
        assert report["decisions_replayed"] == len(report["regret"]) <= 5
        assert report["decisions_total"] >= report["decisions_replayed"]
        assert (report["decisions_truncated"]
                == report["decisions_total"] - report["decisions_replayed"])

    def test_regret_records_are_complete(self, report):
        base = report["baseline"]["completion_time"]
        for record in report["regret"]:
            assert record["forced"] != record["decision"]
            assert {record["forced"], record["decision"]} <= {"wait", "slow"}
            assert record["completion_delta"] == pytest.approx(
                record["completion_time"] - base)

    def test_report_is_json_serializable(self, report):
        json.dumps(report)


class TestCounterfactualSpans:
    @pytest.fixture(scope="class")
    def report(self):
        return twin.twin_report(
            _small_spec(), checkpoint_every=500, max_decisions=3)

    def test_spans_one_per_decision(self, report):
        spans = [e for e in counterfactual_spans(report) if e["ph"] == "X"]
        counters = [e for e in counterfactual_spans(report) if e["ph"] == "C"]
        assert len(spans) == len(report["regret"])
        assert len(counters) == len(report["regret"])
        for span, record in zip(spans, report["regret"]):
            assert span["dur"] >= 1
            assert span["args"]["index"] == record["index"]

    def test_document_validates(self, report):
        document = twin_timeline_document(report)
        assert validate_trace_events(document) == []
        names = {e["name"] for e in document["traceEvents"] if e["ph"] == "M"}
        assert "process_name" in names


class TestCli:
    def test_twin_command_writes_report(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "twin.json"
        trace = tmp_path / "trace.json"
        code = main([
            "twin", "--wifi", "1.0", "--lte", "8.6", "--size", "64k",
            "--max-decisions", "3", "-o", str(out), "--trace-out", str(trace),
        ])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["kind"] == "twin_grid"
        assert len(report["cells"]) == 1
        assert report["cells"][0]["kind"] == "twin_report"
        assert validate_trace_events(json.loads(trace.read_text())) == []
        assert "regret" in capsys.readouterr().out

    def test_twin_verify_mode(self, capsys):
        from repro.cli import main

        code = main([
            "twin", "--wifi", "1.0", "--lte", "8.6", "--size", "64k",
            "--verify",
        ])
        assert code == 0
        assert "verify ok" in capsys.readouterr().out
